package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"speedkit/internal/clock"
	"speedkit/internal/gdpr"
	"speedkit/internal/netsim"
	"speedkit/internal/proxy"
	"speedkit/internal/session"
	"speedkit/internal/workload"
)

func newTestStorefront(t *testing.T) (*Service, *clock.Simulated) {
	t.Helper()
	clk := clock.NewSimulated(time.Time{})
	svc, err := NewStorefront(StorefrontConfig{
		Config:   Config{Clock: clk, Seed: 1, Delta: 30 * time.Second},
		Products: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc, clk
}

func testUser() *session.User {
	u := &session.User{ID: "u1", Name: "Ada", Email: "ada@example.com",
		LoggedIn: true, Tier: "gold", ConsentPersonalization: true, Region: netsim.EU}
	u.AddToCart(workload.ProductID(5), 2)
	return u
}

func TestEndToEndPersonalizedPageLoad(t *testing.T) {
	svc, _ := newTestStorefront(t)
	dev := svc.NewDevice(testUser(), netsim.EU)

	res, err := dev.Load(context.Background(), "/")
	if err != nil {
		t.Fatal(err)
	}
	body := string(res.Body)
	if !strings.Contains(body, "Welcome back, Ada!") {
		t.Fatalf("greeting missing: %s", body)
	}
	if !strings.Contains(body, "2 items") {
		t.Fatalf("cart missing: %s", body)
	}
	if strings.Contains(body, "<!--block:") {
		t.Fatal("placeholders survived")
	}
	if res.Source != proxy.SourceOrigin {
		t.Fatalf("cold load source = %v", res.Source)
	}
}

func TestCacheTierProgression(t *testing.T) {
	svc, _ := newTestStorefront(t)
	devA := svc.NewDevice(testUser(), netsim.EU)
	devB := svc.NewDevice(nil, netsim.EU)

	// Device A cold: origin. Device A again: its own cache.
	r1, _ := devA.Load(context.Background(), "/product/p00003")
	r2, _ := devA.Load(context.Background(), "/product/p00003")
	// Device B, same region: the edge already holds the shell.
	r3, _ := devB.Load(context.Background(), "/product/p00003")

	if r1.Source != proxy.SourceOrigin || r2.Source != proxy.SourceDevice || r3.Source != proxy.SourceCDN {
		t.Fatalf("tier progression = %v, %v, %v", r1.Source, r2.Source, r3.Source)
	}
	// Latency ordering: device << cdn << origin.
	if !(r2.Latency < r3.Latency && r3.Latency < r1.Latency) {
		t.Fatalf("latency ordering violated: device=%v cdn=%v origin=%v",
			r2.Latency, r3.Latency, r1.Latency)
	}
	// Personalization differs although the shell is shared.
	if string(r1.Body) == string(r3.Body) {
		t.Fatal("different users received identical personalized bodies")
	}
}

func TestWritePipelinePurgesAndSketches(t *testing.T) {
	svc, clk := newTestStorefront(t)
	dev := svc.NewDevice(nil, netsim.EU)
	path := "/product/p00007"

	if _, err := dev.Load(context.Background(), path); err != nil {
		t.Fatal(err)
	}
	// A price write triggers the pipeline.
	if err := svc.Docs().Patch("products", "p00007", map[string]any{"price": 1.5}); err != nil {
		t.Fatal(err)
	}
	if !svc.SketchServer().Contains(path) {
		t.Fatal("written path missing from sketch")
	}
	// The CDN copy is purged after the propagation delay.
	clk.Advance(20 * time.Millisecond)
	if _, ok := svc.CDN().Edge(netsim.EU).Lookup(path); ok {
		t.Fatal("CDN still serves purged entry")
	}
	if svc.Stats().Invalidations == 0 {
		t.Fatal("invalidation not counted")
	}
}

func TestEndToEndDeltaAtomicity(t *testing.T) {
	svc, clk := newTestStorefront(t)
	dev := svc.NewDevice(nil, netsim.EU)
	path := "/product/p00011"

	r1, _ := dev.Load(context.Background(), path)
	if r1.Version != 1 {
		t.Fatalf("initial version = %d", r1.Version)
	}
	_ = svc.Docs().Patch("products", "p00011", map[string]any{"price": 2.0})

	// Within Δ the device may serve v1 — measure its staleness stays
	// within the bound.
	clk.Advance(10 * time.Second)
	r2, _ := dev.Load(context.Background(), path)
	stale := svc.VersionLog().Staleness(path, r2.Version, clk.Now())
	if stale > svc.Delta() {
		t.Fatalf("staleness %v exceeds Δ %v", stale, svc.Delta())
	}

	// After Δ the sketch refresh forces revalidation to v2.
	clk.Advance(25 * time.Second)
	r3, _ := dev.Load(context.Background(), path)
	if r3.Version != 2 {
		t.Fatalf("post-Δ version = %d, want 2 (revalidated=%v refreshed=%v)",
			r3.Version, r3.Revalidated, r3.SketchRefreshed)
	}
}

func TestQueryPageInvalidatedByMatchingWrite(t *testing.T) {
	svc, clk := newTestStorefront(t)
	dev := svc.NewDevice(nil, netsim.EU)
	catPath := workload.CategoryPath(workload.CategoryOf(0)) // p00000's category

	r1, err := dev.Load(context.Background(), catPath)
	if err != nil {
		t.Fatal(err)
	}
	v1 := svc.Origin().Version(catPath)

	// Change a product in that category: the listing's result set changes.
	_ = svc.Docs().Patch("products", "p00000", map[string]any{"price": 0.01})
	if svc.Origin().Version(catPath) != v1+1 {
		t.Fatalf("category version not bumped: %d", svc.Origin().Version(catPath))
	}
	if !svc.SketchServer().Contains(catPath) {
		t.Fatal("category page missing from sketch")
	}

	// Past Δ, the device revalidates and sees the new price.
	clk.Advance(svc.Delta() + time.Second)
	r2, _ := dev.Load(context.Background(), catPath)
	if r2.Version <= r1.Version {
		t.Fatalf("category page version did not advance: %d -> %d", r1.Version, r2.Version)
	}
	if !strings.Contains(string(r2.Body), "0.01") {
		t.Fatal("updated price not in revalidated listing")
	}
}

func TestUnrelatedCategoryNotInvalidated(t *testing.T) {
	svc, _ := newTestStorefront(t)
	other := workload.CategoryPath(workload.CategoryOf(1)) // different category
	dev := svc.NewDevice(nil, netsim.EU)
	_, _ = dev.Load(context.Background(), other)
	_ = svc.Docs().Patch("products", "p00000", map[string]any{"stock": int64(1)})
	if svc.SketchServer().Contains(other) {
		t.Fatal("write invalidated an unrelated category page")
	}
}

func TestSpeedKitLoadsAreGDPRCompliant(t *testing.T) {
	svc, clk := newTestStorefront(t)
	dev := svc.NewDevice(testUser(), netsim.EU)
	for i := 0; i < 10; i++ {
		_, _ = dev.Load(context.Background(), "/product/p00001")
		clk.Advance(5 * time.Second)
	}
	if !svc.Auditor().Compliant() {
		t.Fatalf("Speed Kit leaked PII to CDN:\n%s", svc.Auditor())
	}
}

func TestLegacyBaselineLeaksPIIAndFragmentsCache(t *testing.T) {
	svc, _ := newTestStorefront(t)
	u1, u2 := testUser(), testUser()
	u2.ID = "u2"

	r1, err := svc.LoadLegacy(u1, netsim.EU, "/product/p00001")
	if err != nil {
		t.Fatal(err)
	}
	// Same user again: CDN hit under the per-user key.
	r2, _ := svc.LoadLegacy(u1, netsim.EU, "/product/p00001")
	// Different user: per-user key misses — the fragmentation cost.
	r3, _ := svc.LoadLegacy(u2, netsim.EU, "/product/p00001")
	if r1.Source != proxy.SourceOrigin || r2.Source != proxy.SourceCDN || r3.Source != proxy.SourceOrigin {
		t.Fatalf("legacy sources = %v, %v, %v", r1.Source, r2.Source, r3.Source)
	}
	// The personalized body was rendered server-side (product pages carry
	// the cart block; u1 has 2 items).
	if !strings.Contains(string(r1.Body), "2 items") {
		t.Fatalf("legacy page not personalized: %s", r1.Body)
	}
	// And the auditor caught the cookie crossing the CDN boundary.
	if svc.Auditor().Compliant() {
		t.Fatal("legacy flow did not register as non-compliant")
	}
	rep := svc.Auditor().Report(gdpr.BoundaryCDN)
	if rep.PIIFieldCount == 0 || rep.RequestsWithPII != 3 {
		t.Fatalf("cdn report = %+v", rep)
	}
}

func TestLoadDirectAlwaysOrigin(t *testing.T) {
	svc, _ := newTestStorefront(t)
	for i := 0; i < 3; i++ {
		r, err := svc.LoadDirect(testUser(), netsim.APAC, "/")
		if err != nil {
			t.Fatal(err)
		}
		if r.Source != proxy.SourceOrigin {
			t.Fatalf("direct load source = %v", r.Source)
		}
		// APAC → EU origin is expensive.
		if r.Latency < 200*time.Millisecond {
			t.Fatalf("APAC direct latency suspiciously low: %v", r.Latency)
		}
	}
}

func TestAdaptiveTTLShrinksForHotWrittenPage(t *testing.T) {
	svc, clk := newTestStorefront(t)
	dev := svc.NewDevice(nil, netsim.EU)
	hot := "/product/p00002"

	// Drive a write-heavy pattern on one product.
	for i := 0; i < 15; i++ {
		_ = svc.Docs().Patch("products", "p00002", map[string]any{"stock": int64(i)})
		_, _ = dev.Load(context.Background(), hot)
		clk.Advance(20 * time.Second)
	}
	est := svc.Estimator()
	if est == nil {
		t.Fatal("adaptive estimator not installed by default")
	}
	hotTTL := est.TTL(hot)
	coldTTL := est.TTL("/product/p00099")
	if hotTTL >= coldTTL {
		t.Fatalf("hot TTL %v not shorter than cold TTL %v", hotTTL, coldTTL)
	}
}

func TestStaticTTLSourceRespected(t *testing.T) {
	clk := clock.NewSimulated(time.Time{})
	svc, err := NewStorefront(StorefrontConfig{
		Config:   Config{Clock: clk, Seed: 2, TTLSource: staticTTL(42 * time.Second)},
		Products: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if svc.Estimator() != nil {
		t.Fatal("estimator installed despite static source")
	}
	dev := svc.NewDevice(nil, netsim.EU)
	_, _ = dev.Load(context.Background(), "/product/p00001")
	e, ok := svc.CDN().Edge(netsim.EU).Lookup("/product/p00001")
	if !ok {
		t.Fatal("edge not filled")
	}
	if got := e.ExpiresAt.Sub(e.StoredAt); got != 42*time.Second {
		t.Fatalf("edge TTL = %v, want 42s", got)
	}
}

func TestFetchUnknownPathErrors(t *testing.T) {
	svc, _ := newTestStorefront(t)
	dev := svc.NewDevice(nil, netsim.EU)
	if _, err := dev.Load(context.Background(), "/no/such/page"); err == nil {
		t.Fatal("unknown path loaded")
	}
}

func TestServiceStatsProgress(t *testing.T) {
	svc, _ := newTestStorefront(t)
	dev := svc.NewDevice(nil, netsim.US)
	_, _ = dev.Load(context.Background(), "/")
	_ = svc.Docs().Patch("products", "p00001", map[string]any{"price": 9.9})
	st := svc.Stats()
	if st.SketchFetches == 0 || st.OriginRenders == 0 || st.Invalidations == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEraseUser(t *testing.T) {
	svc, clk := newTestStorefront(t)
	u := testUser()
	_ = svc.NewDevice(u, netsim.EU) // enrollment records consent
	if !svc.Consent().Allowed(u.ID, gdpr.PurposePersonalization) {
		t.Fatal("consent not recorded at enrollment")
	}
	// A server-side personal document exists for this user.
	_ = svc.Docs().Insert("orders", u.ID, map[string]any{"total": 99.0})
	_ = clk

	svc.EraseUser(u)
	if svc.Consent().Allowed(u.ID, gdpr.PurposePersonalization) {
		t.Fatal("consent survived erasure")
	}
	if _, _, err := svc.Docs().Get("orders", u.ID); err == nil {
		t.Fatal("order document survived erasure")
	}
	if u.CartSize() != 0 {
		t.Fatal("device cart survived erasure")
	}
	svc.EraseUser(nil) // must not panic
}

// staticTTL adapts a duration into a ttl.TTLSource for tests.
type staticTTL time.Duration

func (s staticTTL) TTL(string) time.Duration { return time.Duration(s) }
