package lint

import (
	"path/filepath"
	"testing"
)

// newTestModule opens the enclosing module (the repo itself), so fixture
// packages can import real speedkit packages.
func newTestModule(t *testing.T) *Module {
	t.Helper()
	m, err := LoadModule(".")
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	return m
}

// checkFixture loads testdata/<dir> under the given synthetic import path
// and asserts the analyzers' findings match its want annotations exactly.
func checkFixture(t *testing.T, dir, path string, analyzers ...*Analyzer) {
	t.Helper()
	m := newTestModule(t)
	pkg, err := m.LoadDir(filepath.Join("testdata", dir), path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	problems, err := CheckFixture(pkg, analyzers...)
	if err != nil {
		t.Fatalf("CheckFixture: %v", err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

func TestClockDisciplineFixture(t *testing.T) {
	checkFixture(t, "clockuse", "fixture/clockuse", ClockDiscipline)
}

func TestClockDisciplineBackoffFixture(t *testing.T) {
	// Retry/backoff code: raw sleeps, time.After deadlines, and timer
	// constructors are flagged; clock.Sleep / Stopwatch forms are clean.
	checkFixture(t, "backoffuse", "fixture/backoffuse", ClockDiscipline)
}

func TestClockDisciplineExemptsClockPackage(t *testing.T) {
	// Same kind of wall-clock read, but under internal/clock: clean.
	checkFixture(t, "clockexempt", "fixture/internal/clock/impl", ClockDiscipline)
}

func TestGDPRBoundaryFixture(t *testing.T) {
	checkFixture(t, "cdnfixture", "fixture/internal/cdn", GDPRBoundary)
}

func TestGDPRBoundaryCoversDurabilityTier(t *testing.T) {
	// The WAL/durable packages persist to disk; the same boundary applies.
	checkFixture(t, "walfixture", "fixture/internal/wal", GDPRBoundary)
}

func TestGDPRBoundaryIgnoresDeviceSide(t *testing.T) {
	// PII and session imports outside shared infrastructure: clean.
	checkFixture(t, "deviceside", "fixture/internal/device", GDPRBoundary)
}

func TestLockCheckFixture(t *testing.T) {
	checkFixture(t, "locks", "fixture/locks", LockCheck)
}

func TestRandDisciplineFixture(t *testing.T) {
	checkFixture(t, "randuse", "fixture/randuse", RandDiscipline)
}

func TestObsLabelsFixture(t *testing.T) {
	checkFixture(t, "obsuse", "fixture/obsuse", ObsLabels)
}

func TestObsLabelsRejectsObsInSharedInfra(t *testing.T) {
	checkFixture(t, "obsinfra", "fixture/internal/cache", ObsLabels)
}

func TestObsLabelsCoversSlogFields(t *testing.T) {
	// The structured log gets the same key/value fence as obs labels:
	// PII-classified constant keys and identity-derived values in Str /
	// Int / Msg / Named positions are flagged; anonymous state is clean.
	checkFixture(t, "sloguse", "fixture/sloguse", ObsLabels)
}

func TestGDPRBoundaryCoversCommands(t *testing.T) {
	// A main package with the "//speedkit:deploy shared-infra" directive
	// gets the full boundary treatment: the synthetic path is NOT under
	// internal/ or cmd/speedkit-edge, so only the directive applies.
	checkFixture(t, "edgecmd", "fixture/cmd/edgecmd", GDPRBoundary)
}

func TestPIIFlowFixture(t *testing.T) {
	// Interprocedural taint: ≥2-hop flows into a WAL frame, a metric
	// label, and a CDN body; sanitizer cut-offs; struct-field
	// sensitivity; suppression directives.
	checkFixture(t, "piiflow", "fixture/piiflow", PIIFlow)
}

func TestPIIFlowCoversSlogSink(t *testing.T) {
	// Interprocedural taint into structured-log record positions, with
	// the gdpr sanitizers cutting the flow.
	checkFixture(t, "slogflow", "fixture/slogflow", PIIFlow)
}

func TestPIIFlowCoversEdgeProxy(t *testing.T) {
	// Edge purge keys are served and persisted on shared POPs:
	// identity-derived keys are flagged, pseudonymized ones pass.
	checkFixture(t, "edgeflow", "fixture/edgeflow", PIIFlow)
}

func TestPIIFlowCoversClusterDeltaExchange(t *testing.T) {
	// Cluster report writers become wire frames replicated to every
	// node and journaled into per-node WALs: session-derived keys are
	// flagged, pseudonymized and anonymous resource IDs pass.
	checkFixture(t, "clusterflow", "fixture/clusterflow", PIIFlow)
}

func TestHotPathAllocFixture(t *testing.T) {
	checkFixture(t, "hotpathalloc", "fixture/hotpathalloc", HotPathAlloc)
}
