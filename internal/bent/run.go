package bent

import (
	"bytes"
	"fmt"
	"io"
	"os/exec"
)

// Runner executes suites through `go test -bench` and parses the output.
type Runner struct {
	// Go is the go tool to invoke (default "go").
	Go string
	// Benchtime overrides every suite's benchtime when non-empty (the
	// CI smoke pass sets "1x").
	Benchtime string
	// Stderr receives the go test stderr (and a copy of stdout when
	// Verbose); nil discards.
	Stderr io.Writer
	// Verbose mirrors the raw benchmark output to Stderr as it is
	// produced, so failures are diagnosable from CI logs.
	Verbose bool
}

// Run executes one suite and returns its parsed report. A non-zero go
// test exit is an error (benchmarks must compile and run); parse
// problems surface as an empty Benchmarks slice the caller rejects.
func (r *Runner) Run(s Suite) (Report, error) {
	goTool := r.Go
	if goTool == "" {
		goTool = "go"
	}
	benchtime := s.Benchtime
	if r.Benchtime != "" {
		benchtime = r.Benchtime
	}
	args := []string{"test", "-run", "^$", "-bench", s.Bench, "-benchmem"}
	if benchtime != "" {
		args = append(args, "-benchtime", benchtime)
	}
	if s.CPU != "" {
		args = append(args, "-cpu", s.CPU)
	}
	args = append(args, s.Package)

	cmd := exec.Command(goTool, args...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = r.Stderr
	if err := cmd.Run(); err != nil {
		return Report{}, fmt.Errorf("suite %s: go %v: %w\n%s", s.Name, args, err, out.String())
	}
	if r.Verbose && r.Stderr != nil {
		r.Stderr.Write(out.Bytes())
	}
	rep, err := Parse(&out, nil)
	if err != nil {
		return Report{}, fmt.Errorf("suite %s: parse: %w", s.Name, err)
	}
	rep.Suite = s.Name
	rep.Note = s.Note
	if len(rep.Benchmarks) == 0 {
		return Report{}, fmt.Errorf("suite %s: no benchmark results (pattern %q in %s)",
			s.Name, s.Bench, s.Package)
	}
	return rep, nil
}
