package cluster

// delta.go defines the inter-node wire formats: the per-shard sketch
// delta frame exchanged on /v1/cluster/delta and the ring description on
// /v1/cluster/ring. Both are JSON on the /v1 surface and carry only
// anonymous coherence metadata — a frame is a Bloom filter (bit material,
// no resource IDs, no identity) plus a generation watermark.

// DeltaFrame is one node's published shard sketch: the flattened Bloom
// filter of its possibly-stale resource shard at a generation. Frames are
// idempotent full states rather than incremental diffs — folding the same
// frame twice is a no-op, and a missed exchange round needs no replay,
// which is what keeps the protocol coordinator-free.
type DeltaFrame struct {
	// Node names the publishing member.
	Node string `json:"node"`
	// Generation is the shard sketch's content generation (monotone per
	// node; survives recovery via the durable generation floor).
	Generation uint64 `json:"generation"`
	// Sketch is the bloom.Filter MarshalBinary payload (base64 in JSON).
	Sketch []byte `json:"sketch"`
	// Cold marks a frame published during the node's post-crash cold
	// window: the sketch is saturated, so folding it makes the merged
	// filter conservative for the whole cluster.
	Cold bool `json:"cold,omitempty"`
}

// RingInfo is the ring layout served at /v1/cluster/ring: everything a
// peer needs to derive the identical ring locally.
type RingInfo struct {
	Seed         int64    `json:"seed"`
	VirtualNodes int      `json:"virtual_nodes"`
	Members      []string `json:"members"`
}
