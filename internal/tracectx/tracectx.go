// Package tracectx defines the causal identity a request carries across
// process boundaries: a 128-bit trace ID shared by every span of one
// logical request, a 64-bit span ID per timed operation, and the W3C
// Trace Context (`traceparent`) wire form that moves both — together
// with the head-based sampling decision — over real HTTP hops.
//
// The package is a deliberate leaf: pure stdlib, no dependency on
// internal/obs, internal/gdpr, or internal/session, so *every* tier of
// the system may import it — including the shared-infrastructure
// packages (cdn, cache, wal, durable) that the gdprboundary and
// obslabels analyzers fence off from the telemetry registry. Identity
// here means *request* identity, never *user* identity: a SpanContext
// carries random bits and a sampling flag, nothing else, which is what
// keeps propagation GDPR-neutral.
//
// ID generation follows the repo's seeded-randomness discipline: IDs
// are drawn from a splitmix64 stream seeded explicitly by the owner
// (the obs.Tracer), so simulations and golden tests replay
// byte-identical traces. Two cooperating processes seed their tracers
// differently and cannot collide in practice (128-bit space); a process
// that joins a remote trace adopts the remote trace ID verbatim.
package tracectx

import (
	"context"
	"encoding/hex"
	"errors"
)

// errBadHexID rejects JSON that is not the exact lowercase-hex string
// form these types marshal to.
var errBadHexID = errors.New("tracectx: malformed hex id")

// TraceID is the 128-bit identity shared by every span of one request.
// The zero value is invalid per the W3C spec.
type TraceID [16]byte

// SpanID is the 64-bit identity of one span. The zero value is invalid.
type SpanID [8]byte

// IsZero reports whether the trace ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the span ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the trace ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the span ID as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// MarshalJSON renders the trace ID as a 32-hex-digit JSON string, the
// same form the wire and the debug endpoints use, so trace exports are
// byte-deterministic and grep-able against traceparent headers.
func (t TraceID) MarshalJSON() ([]byte, error) {
	return appendHexJSON(make([]byte, 0, 34), t[:]), nil
}

// UnmarshalJSON accepts the hex-string form produced by MarshalJSON.
func (t *TraceID) UnmarshalJSON(b []byte) error {
	return unmarshalHexJSON(t[:], b)
}

// MarshalJSON renders the span ID as a 16-hex-digit JSON string.
func (s SpanID) MarshalJSON() ([]byte, error) {
	return appendHexJSON(make([]byte, 0, 18), s[:]), nil
}

// UnmarshalJSON accepts the hex-string form produced by MarshalJSON.
func (s *SpanID) UnmarshalJSON(b []byte) error {
	return unmarshalHexJSON(s[:], b)
}

func appendHexJSON(dst, src []byte) []byte {
	dst = append(dst, '"')
	dst = hexAppend(dst, src)
	return append(dst, '"')
}

func unmarshalHexJSON(dst []byte, b []byte) error {
	if len(b) != len(dst)*2+2 || b[0] != '"' || b[len(b)-1] != '"' {
		return errBadHexID
	}
	if !decodeLowerHex(dst, string(b[1:len(b)-1])) {
		return errBadHexID
	}
	return nil
}

// ParseTraceID parses 32 lowercase hex digits. It fails on bad length,
// non-hex bytes, uppercase (the W3C form is lowercase-only), and the
// all-zero ID.
func ParseTraceID(s string) (TraceID, bool) {
	var id TraceID
	if len(s) != 32 || !decodeLowerHex(id[:], s) || id.IsZero() {
		return TraceID{}, false
	}
	return id, true
}

// ParseSpanID parses 16 lowercase hex digits, with the same strictness
// as ParseTraceID.
func ParseSpanID(s string) (SpanID, bool) {
	var id SpanID
	if len(s) != 16 || !decodeLowerHex(id[:], s) || id.IsZero() {
		return SpanID{}, false
	}
	return id, true
}

// SpanContext is the propagated identity of one span: which trace it
// belongs to, which span is speaking, and whether the head of the trace
// decided to sample it. It is a plain value — copying is free and
// parsing one allocates nothing, which is what keeps the unsampled
// propagation path at zero allocations.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	// Sampled is the head-based sampling decision. Downstream processes
	// honor it in both directions: a sampled parent forces recording, an
	// unsampled parent suppresses it, so one page load is either traced
	// end-to-end or not at all.
	Sampled bool
}

// Valid reports whether the context carries usable identity (non-zero
// trace and span IDs). Only a valid context may be propagated or
// inherited; everything else means "start a fresh root".
func (sc SpanContext) Valid() bool {
	return !sc.TraceID.IsZero() && !sc.SpanID.IsZero()
}

// traceparent constants per https://www.w3.org/TR/trace-context/.
const (
	versionPrefix  = "00"
	traceparentLen = 2 + 1 + 32 + 1 + 16 + 1 + 2 // 00-<32 hex>-<16 hex>-<2 hex>
	flagSampled    = 0x01
	invalidVersion = "ff"
	// Header is the canonical (lowercase) traceparent header name.
	Header = "traceparent"
)

// Traceparent renders the context in the W3C wire form,
// "00-<trace-id>-<parent-id>-<trace-flags>". Calling it on an invalid
// context returns "" — never propagate zero identity.
func (sc SpanContext) Traceparent() string {
	if !sc.Valid() {
		return ""
	}
	buf := make([]byte, 0, traceparentLen)
	buf = append(buf, versionPrefix...)
	buf = append(buf, '-')
	buf = hexAppend(buf, sc.TraceID[:])
	buf = append(buf, '-')
	buf = hexAppend(buf, sc.SpanID[:])
	buf = append(buf, '-')
	if sc.Sampled {
		buf = append(buf, '0', '1')
	} else {
		buf = append(buf, '0', '0')
	}
	return string(buf)
}

// ParseTraceparent parses a traceparent header value, fail-closed: any
// malformed, truncated, wrong-version, or zero-ID input returns ok=false
// and the zero SpanContext, so the caller starts a fresh root span and
// makes its own sampling decision. It never panics and never allocates,
// whatever bytes arrive — request headers are attacker-controlled.
//
// Per the spec, a version higher than 00 is accepted if the 00-shaped
// prefix parses (forward compatibility); version "ff" is invalid.
// Unknown flag bits are ignored; only the sampled bit is interpreted.
func ParseTraceparent(s string) (SpanContext, bool) {
	// Version field: exactly two lowercase hex digits.
	if len(s) < traceparentLen {
		return SpanContext{}, false
	}
	var version [1]byte
	if !decodeLowerHex(version[:], s[0:2]) || s[0:2] == invalidVersion {
		return SpanContext{}, false
	}
	if s[0:2] == versionPrefix && len(s) != traceparentLen {
		// Version 00 has no extension fields: the length is exact.
		return SpanContext{}, false
	}
	if len(s) > traceparentLen && s[traceparentLen] != '-' {
		// Future versions may append "-extra", but only dash-separated.
		return SpanContext{}, false
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, false
	}
	var sc SpanContext
	if !decodeLowerHex(sc.TraceID[:], s[3:35]) || sc.TraceID.IsZero() {
		return SpanContext{}, false
	}
	if !decodeLowerHex(sc.SpanID[:], s[36:52]) || sc.SpanID.IsZero() {
		return SpanContext{}, false
	}
	var flags [1]byte
	if !decodeLowerHex(flags[:], s[53:55]) {
		return SpanContext{}, false
	}
	sc.Sampled = flags[0]&flagSampled != 0
	return sc, true
}

// decodeLowerHex decodes src (lowercase hex only — the wire form the
// W3C mandates) into dst. Returns false on any non-[0-9a-f] byte or a
// length mismatch. Unlike encoding/hex it allocates nothing and rejects
// uppercase, both load-bearing here.
func decodeLowerHex(dst []byte, src string) bool {
	if len(src) != len(dst)*2 {
		return false
	}
	for i := range dst {
		hi, ok1 := fromLowerHex(src[i*2])
		lo, ok2 := fromLowerHex(src[i*2+1])
		if !ok1 || !ok2 {
			return false
		}
		dst[i] = hi<<4 | lo
	}
	return true
}

func fromLowerHex(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}

const lowerHexDigits = "0123456789abcdef"

func hexAppend(dst, src []byte) []byte {
	for _, b := range src {
		dst = append(dst, lowerHexDigits[b>>4], lowerHexDigits[b&0x0f])
	}
	return dst
}

// IDSource is a deterministic splitmix64 stream for trace and span IDs.
// It follows the repo's seeded-randomness discipline: the owner seeds it
// explicitly, twin runs replay identical ID sequences, and golden trace
// exports stay byte-identical. Methods are not safe for concurrent use;
// the owning tracer serializes draws (IDs are drawn only on the sampled
// path, which is cold by construction).
type IDSource struct {
	state uint64
}

// NewIDSource seeds a stream. Seed 0 is remapped to a fixed non-zero
// constant so the stream never degenerates.
func NewIDSource(seed int64) *IDSource {
	s := uint64(seed)
	if s == 0 {
		s = 0x9e3779b97f4a7c15
	}
	return &IDSource{state: s}
}

// next advances the splitmix64 stream (Steele et al., "Fast splittable
// pseudorandom number generators").
func (r *IDSource) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// TraceID draws a non-zero 128-bit trace ID.
func (r *IDSource) TraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		putUint64(id[0:8], r.next())
		putUint64(id[8:16], r.next())
	}
	return id
}

// SpanID draws a non-zero 64-bit span ID.
func (r *IDSource) SpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		putUint64(id[:], r.next())
	}
	return id
}

func putUint64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v >> 56)
	b[1] = byte(v >> 48)
	b[2] = byte(v >> 40)
	b[3] = byte(v >> 32)
	b[4] = byte(v >> 24)
	b[5] = byte(v >> 16)
	b[6] = byte(v >> 8)
	b[7] = byte(v)
}

// ctxKey is the private context key carrying the active SpanContext.
type ctxKey struct{}

// ContextWithSpan returns ctx carrying sc as the active span identity.
// Invalid contexts are not stored: callers on the unsampled path pass
// the ctx through untouched (zero allocations) by never calling this.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sc)
}

// SpanFromContext returns the active span identity, if any. The false
// return is the common case and costs one map-free ctx lookup.
func SpanFromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(ctxKey{}).(SpanContext)
	return sc, ok && sc.Valid()
}
