# Convenience targets; plain `go build ./...` / `go test ./...` work too.
# `make help` lists them.

GO ?= go

.PHONY: all help build test lint lint-sarif lint-baseline race cover bench bench-hotpath bench-obs bench-all bench-regress bench-baselines chaos crash stitch edge cluster experiments fmt vet clean

all: build test lint

help:
	@echo "Targets:"
	@echo "  build          go build ./..."
	@echo "  test           go test ./..."
	@echo "  lint           repo-specific static analysis (speedkit-lint); fails only on"
	@echo "                 findings not recorded in lint.baseline.json"
	@echo "  lint-sarif     same run, also writes lint.sarif for CI artifact upload"
	@echo "  lint-baseline  regenerate lint.baseline.json from current findings"
	@echo "  race           go test -race ./..."
	@echo "  cover          coverage for internal/..."
	@echo "  bench          one benchmark per table/figure (reduced scale)"
	@echo "  bench-hotpath  parallel hot-path microbenchmarks -> BENCH_hotpath.json"
	@echo "  bench-obs      observability overhead benchmarks (0 allocs/op bar)"
	@echo "  bench-all      run every benchsuites/*.suite once at 1x (smoke, no gating)"
	@echo "  bench-regress  run every suite at full benchtime and diff against the"
	@echo "                 committed BENCH_*.json baselines; non-zero exit on regression"
	@echo "  bench-baselines  re-seed the BENCH_*.json baselines from this machine"
	@echo "  chaos          seed-pinned fault-injection run asserting the resilience invariants"
	@echo "  crash          seed-pinned crash-recovery run asserting durability invariants"
	@echo "  stitch         two-process trace-stitching gate over real HTTP (traceparent"
	@echo "                 propagation, causal parentage, byte-deterministic export)"
	@echo "  edge           edge-cache smoke gate over real HTTP (stampede coalescing,"
	@echo "                 purge propagation, mid-fill kill + warm restart, zero"
	@echo "                 persisted PII)"
	@echo "  cluster        multi-node smoke gate: 3 sharded nodes over loopback HTTP"
	@echo "                 with seeded kills + partitions (exact sharded matching,"
	@echo "                 cluster-wide Δ-atomicity, twin-run determinism, zero leaks)"
	@echo "  experiments    regenerate every experiment at full scale"
	@echo "  fmt / vet / clean"

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Repo-specific static analysis: GDPR boundary (import-, API-, and
# value-level), clock/lock/rand discipline, obs label hygiene, hot-path
# allocation budget. Exits non-zero only on findings absent from
# lint.baseline.json; baselined findings still print, marked as such.
lint:
	$(GO) run ./cmd/speedkit-lint ./...

# Same run, plus a SARIF 2.1.0 log (lint.sarif) for code-scanning upload.
lint-sarif:
	$(GO) run ./cmd/speedkit-lint -sarif lint.sarif ./...

# Regenerate the baseline. Additions to it deserve the same review as a
# //lint:ignore directive; a shrinking baseline is progress.
lint-baseline:
	$(GO) run ./cmd/speedkit-lint -write-baseline ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./internal/...

# One testing.B benchmark per table/figure (reduced scale).
bench:
	$(GO) test -bench=. -benchmem .

# Hot-path concurrency microbenchmarks, recorded as BENCH_hotpath.json so
# the perf trajectory is tracked in version control. The baseline ns/op
# values were measured with this same harness on the pre-sharding tree
# (single-mutex Store/CDN/Client, commit 0a35725) at GOMAXPROCS=4; they
# are passed to the converter so the artifact records speedups explicitly.
HOTPATH_BENCHES = BenchmarkParallelCacheGet|BenchmarkParallelSketchCheck|BenchmarkSnapshotReuse|BenchmarkFilterContains|BenchmarkSnapshotMightBeStale
HOTPATH_BASELINE = BenchmarkParallelCacheGet=126.4,BenchmarkParallelSketchCheck=124.8,BenchmarkSnapshotReuse=1558958

bench-hotpath:
	$(GO) test -run '^$$' -bench '$(HOTPATH_BENCHES)' -benchmem -cpu 4 . | \
		$(GO) run ./cmd/speedkit-benchjson -out BENCH_hotpath.json \
		-baseline '$(HOTPATH_BASELINE)' \
		-note 'baseline = pre-sharding tree (commit 0a35725) at GOMAXPROCS=4 on the same host'
	@cat BENCH_hotpath.json

# Observability overhead microbenchmarks: disabled/unsampled tracing and
# pre-resolved counter increments must hold 0 allocs/op (the hard gates
# live in internal/obs/alloc_test.go; this target shows the ns/op).
bench-obs:
	$(GO) test -run '^$$' -bench 'BenchmarkObs' -benchmem -cpu 4 .

# Continuous benchmark harness (cmd/speedkit-bent). Suites are the
# checked-in benchsuites/*.suite files; each names its bench regexp,
# package, committed baseline, and noise band.
#
# bench-all is the cheap loop: every suite once at -benchtime 1x, no
# gating — proves the benchmarks still compile and run.
# bench-regress is the gate: full benchtime, compared against the
# committed baselines, non-zero exit on any benchmark outside its band.
# BENT_NOISE_SCALE widens every ns/op band (CI uses this; alloc bands
# are absolute and never scale).
BENT_NOISE_SCALE ?= 1

bench-all:
	$(GO) run ./cmd/speedkit-bent -benchtime 1x -compare=false

bench-regress:
	$(GO) run ./cmd/speedkit-bent -noise-scale $(BENT_NOISE_SCALE)

# Re-seed every suite's baseline from this machine. Commit the resulting
# BENCH_*.json files together with whatever change justified the move.
bench-baselines:
	$(GO) run ./cmd/speedkit-bent -update

# Chaos gate: deterministic fault injection over a seed-pinned field run,
# executed twice and checked for identical fault schedules, Δ-atomicity of
# every connected load, ≥10% injected fault rates on the sketch and origin
# paths, and zero goroutine leaks. Non-zero exit on any violation.
CHAOS_SEED ?= 7
CHAOS_OPS ?= 20000

chaos:
	$(GO) run ./cmd/speedkit-sim -chaos -seed $(CHAOS_SEED) -ops $(CHAOS_OPS)

# Crash gate: seed-driven process kills torn into the WAL append/fsync and
# snapshot-write paths of a durable field run, executed as twin runs over
# separate data directories. Asserts every kill was recovered, Δ-atomicity
# of every connected load across recoveries, byte-identical recovered
# sketch state between the twins, and zero PII bytes in any persisted
# artifact. Non-zero exit on any violation.
CRASH_SEED ?= 3
CRASH_OPS ?= 5000

crash:
	$(GO) run ./cmd/speedkit-sim -crash -seed $(CRASH_SEED) -ops $(CRASH_OPS) -users 30 -products 100 -delta 30s

# Stitch gate: a device proxy and a server as two tracer domains joined
# only by real HTTP over loopback. One page load and one write must each
# yield a single cross-process trace (W3C traceparent propagation, causal
# parentage through the invalidation pipeline), and twin runs on the same
# seed must export byte-identical trace JSON. Non-zero exit on violation.
STITCH_SEED ?= 1

stitch:
	$(GO) run ./cmd/speedkit-sim -stitch -seed $(STITCH_SEED)

# Edge gate: a real speedkit-server and a speedkit edge proxy joined only
# by loopback HTTP. Asserts a 100-client stampede reaches the origin
# exactly once, backend writes purge the edge through the invalidation
# pipeline, a seed-pinned kill torn into the disk tier's WAL mid-fill is
# recovered warm by an in-process restart serving byte-identical bodies
# without refetching, and no PII byte sits in anything the edge
# persisted. Non-zero exit on violation.
EDGE_SEED ?= 1

edge:
	$(GO) run ./cmd/speedkit-sim -edge -seed $(EDGE_SEED) -products 100

# Cluster gate: a 3-node coordinator-free deployment — per-node shard
# sketches over per-node WALs, delta exchange over real loopback HTTP —
# driven on one shared simulated clock with seeded node kills and
# exchange partitions. Asserts sharded invalidation matching equals a
# single unsharded engine, every cache serve stays within Δ of its first
# acknowledged write through every kill and partition, twin seeded runs
# export byte-identical merged sketches, no raw identity reaches any
# node's persisted bytes, and no goroutine leaks. Non-zero exit on
# violation.
CLUSTER_SEED ?= 42

cluster:
	$(GO) run ./cmd/speedkit-sim -cluster -seed $(CLUSTER_SEED) -products 100

# Regenerate every experiment at full scale (minutes).
experiments:
	$(GO) run ./cmd/speedkit-bench

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
