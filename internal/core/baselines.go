package core

import (
	"bytes"
	"fmt"
	"time"

	"speedkit/internal/cache"
	"speedkit/internal/gdpr"
	"speedkit/internal/netsim"
	"speedkit/internal/origin"
	"speedkit/internal/proxy"
	"speedkit/internal/session"
)

// This file implements the two comparison systems the paper's evaluation
// is framed against:
//
//   - LoadDirect: no caching at all — every page load is a full origin
//     round trip ("without Speed Kit" in the field study).
//   - LoadLegacy: a traditional personalizing CDN — pages are rendered
//     per user at the origin, cached at the edge under a per-user key
//     with a fixed TTL, and the user's identifying context (cookie) is
//     sent to the shared CDN on every request. This baseline exhibits
//     both failure modes Speed Kit addresses: PII crosses the CDN
//     boundary, and staleness is bounded only by the TTL.

// BaselineResult is the outcome of one baseline page load.
type BaselineResult struct {
	Path    string
	Body    []byte
	Version uint64
	Latency time.Duration
	Source  proxy.Source
}

// LoadDirect serves the personalized page straight from the origin with
// no caching tier at all.
func (s *Service) LoadDirect(u *session.User, region netsim.Region, path string) (BaselineResult, error) {
	page, err := s.origin.Render(path)
	if err != nil {
		return BaselineResult{}, err
	}
	body := s.personalizeServerSide(page, u)
	lat := s.cfg.Network.Latency(netsim.ClientNode(region), netsim.OriginNode, len(body)) +
		s.renderJitter()
	if s.auditor != nil && u != nil && u.LoggedIn {
		s.auditor.RecordFlow(gdpr.BoundaryOrigin, []string{"path", "user_id", "cart"})
	}
	return BaselineResult{
		Path: path, Body: body, Version: page.Version,
		Latency: lat, Source: proxy.SourceOrigin,
	}, nil
}

// LegacyTTL is the fixed TTL the personalizing-CDN baseline caches under.
const LegacyTTL = 60 * time.Second

// legacyKey builds the per-user cache key a personalizing CDN must use:
// identity and cart state become part of the key, which is exactly why
// its hit ratio collapses for logged-in traffic.
func legacyKey(u *session.User, path string) string {
	if u == nil || !u.LoggedIn {
		return path + "|anon"
	}
	return fmt.Sprintf("%s|user=%s|cart=%d", path, u.ID, u.CartSize())
}

// LoadLegacy serves the page through a traditional personalizing CDN.
func (s *Service) LoadLegacy(u *session.User, region netsim.Region, path string) (BaselineResult, error) {
	// The request to the shared CDN carries the user's cookie context —
	// the compliance violation the auditor measures for Table 3.
	if s.auditor != nil {
		fields := []string{"path"}
		if u != nil && u.LoggedIn {
			fields = append(fields, "user_id", "cart")
		}
		s.auditor.RecordFlow(gdpr.BoundaryCDN, fields)
	}

	key := legacyKey(u, path)
	edge := s.cdnNet.Edge(region)
	if edge != nil {
		if e, ok := edge.Lookup(key); ok {
			lat := s.cfg.Network.Latency(netsim.ClientNode(region), netsim.EdgeNode(region), len(e.Body))
			return BaselineResult{Path: path, Body: e.Body, Version: e.Version,
				Latency: lat, Source: proxy.SourceCDN}, nil
		}
	}

	page, err := s.origin.Render(path)
	if err != nil {
		return BaselineResult{}, err
	}
	body := s.personalizeServerSide(page, u)
	entry := cache.TTLEntry(s.cfg.Clock, key, body, page.Version, LegacyTTL)
	if edge != nil {
		// The personalized body lands on the shared edge on purpose: this
		// is the Table 3 counterexample the auditor quantifies above.
		//lint:ignore piiflow legacy baseline deliberately caches personalized bodies on the shared CDN
		edge.Fill(entry)
	}
	lat := s.cfg.Network.Latency(netsim.ClientNode(region), netsim.EdgeNode(region), len(body)) +
		s.cfg.Network.Latency(netsim.EdgeNode(region), netsim.OriginNode, len(body)) +
		s.renderJitter()
	return BaselineResult{Path: path, Body: body, Version: page.Version,
		Latency: lat, Source: proxy.SourceOrigin}, nil
}

// personalizeServerSide fills dynamic blocks at the origin — the legacy
// rendering model where personalization happens before the response
// leaves the server.
func (s *Service) personalizeServerSide(page origin.Page, u *session.User) []byte {
	body := page.Body
	for _, name := range page.Blocks {
		fr := s.origin.RenderBlock(name, u)
		ph := []byte(origin.BlockPlaceholder(name))
		body = bytes.ReplaceAll(body, ph, fr)
	}
	return body
}
