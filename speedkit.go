// Package speedkit is the public API of the Speed Kit reproduction: a
// polyglot, GDPR-compliant architecture for caching personalized web
// content with bounded staleness (Δ-atomicity), as described in
// Wingerath et al., "Speed Kit: A Polyglot & GDPR-Compliant Approach For
// Caching Personalized Content", ICDE 2020.
//
// # Quick start
//
//	svc, err := speedkit.New(speedkit.WithProducts(1000))
//	if err != nil { ... }
//	defer svc.Close()
//
//	user := speedkit.NewUsers(1, 1)[0]
//	device := svc.NewDevice(user, speedkit.RegionEU)
//	page, err := device.Load(ctx, "/product/p00042")
//	fmt.Printf("served from %s in %v\n", page.Source, page.Latency)
//
// The Service bundles the document store (system of record), origin
// server, CDN edges, the Cache Sketch coherence server, the real-time
// invalidation engine, and the adaptive TTL estimator — all driven by one
// injectable clock, so whole deployments run deterministically under
// simulated time. Devices are client proxies (the service-worker
// equivalent) that keep all personal data on-device: pages are cached as
// anonymous shells and personalized locally via dynamic blocks.
//
// # Failure taxonomy
//
// Load takes a context and fails with typed, errors.Is-able errors. The
// families:
//
//   - ErrOffline — the network is unreachable and no offline shell was
//     held. A load that CAN serve from the device instead returns
//     normally with PageLoad.Offline set.
//   - ErrDegraded — the umbrella for resilience give-ups. Its concrete
//     members ErrBudgetExceeded (the per-load latency budget ran out)
//     and ErrCircuitOpen (the upstream's circuit breaker is open) match
//     both themselves and ErrDegraded.
//   - ErrUpstream — a transient upstream failure that survived the
//     device's retry budget.
//
// Loads that recover through the degradation ladder (serving a held
// copy within Δ, an offline shell, or locally rendered blocks) succeed
// and name the rung taken in PageLoad.Degraded.
//
// For custom deployments (your own collections, pages, and continuous
// queries) build the pieces directly with NewDocumentStore, NewOrigin,
// ParseQuery, and NewService. The internal packages behind these aliases
// contain the full implementation and its documentation.
package speedkit

import (
	"speedkit/internal/core"
	"speedkit/internal/netsim"
	"speedkit/internal/origin"
	"speedkit/internal/proxy"
	"speedkit/internal/query"
	"speedkit/internal/session"
	"speedkit/internal/storage"
	"speedkit/internal/ttl"
)

// Service is one Speed Kit deployment: origin, CDN, coherence server,
// invalidation pipeline, and TTL estimation behind a single handle.
type Service = core.Service

// Config is the raw storefront configuration struct. The zero value is
// a working simulated deployment: 1000 products, Δ = 60 s, adaptive
// TTLs, three CDN regions. New takes functional options instead; reach
// for Config (via WithConfig or NewFromConfig) only for settings
// without a dedicated option.
type Config = core.StorefrontConfig

// ServiceConfig is the lower-level configuration embedded in Config, for
// callers assembling custom deployments with NewService.
type ServiceConfig = core.Config

// Device is the client proxy installed in a user's device (the
// service-worker equivalent).
type Device = proxy.Proxy

// PageLoad is the result of one device page load.
type PageLoad = proxy.PageLoad

// ResilienceConfig tunes a device's retry/backoff, per-load latency
// budget, and circuit breakers (see ServiceConfig.DeviceResilience).
type ResilienceConfig = proxy.ResilienceConfig

// Typed failure modes, all matchable with errors.Is; see the package
// doc's failure-taxonomy section.
var (
	// ErrOffline: connectivity loss with no offline shell to fall back on.
	ErrOffline = proxy.ErrOffline
	// ErrDegraded: umbrella for resilience give-ups (budget, breaker).
	ErrDegraded = proxy.ErrDegraded
	// ErrBudgetExceeded: the per-load latency budget ran out. Is ErrDegraded.
	ErrBudgetExceeded = proxy.ErrBudgetExceeded
	// ErrCircuitOpen: the upstream's circuit breaker rejected the call.
	// Is ErrDegraded.
	ErrCircuitOpen = proxy.ErrCircuitOpen
	// ErrUpstream: a transient upstream failure that survived retries.
	ErrUpstream = proxy.ErrUpstream
)

// DegradeReason names the degradation-ladder rung a successful load took
// (PageLoad.Degraded; empty for full-protocol loads).
type DegradeReason = proxy.DegradeReason

// Degradation-ladder rungs.
const (
	DegradeNone             = proxy.DegradeNone
	DegradeServeStale       = proxy.DegradeServeStale
	DegradeRevalidate       = proxy.DegradeRevalidate
	DegradeOfflineShell     = proxy.DegradeOfflineShell
	DegradeCircuitOpen      = proxy.DegradeCircuitOpen
	DegradeBudget           = proxy.DegradeBudget
	DegradeRetriesExhausted = proxy.DegradeRetriesExhausted
	DegradeBlocksLocal      = proxy.DegradeBlocksLocal
)

// Source identifies the tier that served a load (device, CDN, origin).
type Source = proxy.Source

// Serving tiers.
const (
	SourceDevice = proxy.SourceDevice
	SourceCDN    = proxy.SourceCDN
	SourceOrigin = proxy.SourceOrigin
)

// User is the on-device session state personalization runs on.
type User = session.User

// Region locates clients and edges.
type Region = netsim.Region

// Canonical regions.
const (
	RegionEU   = netsim.EU
	RegionUS   = netsim.US
	RegionAPAC = netsim.APAC
)

// DocumentStore is the system of record backing an origin.
type DocumentStore = storage.DocumentStore

// Origin is the first-party web server Speed Kit accelerates.
type Origin = origin.Server

// Query is a declarative read whose result set is cacheable and
// invalidation-tracked.
type Query = query.Query

// StaticTTL is a fixed TTL policy for baseline configurations; leave
// Config.TTLSource nil for the adaptive estimator.
type StaticTTL = ttl.Static

// NewFromConfig builds the canonical storefront deployment from a raw
// config struct.
//
// Deprecated: use New with functional options (WithProducts, WithDelta,
// WithDataDir, WithResilience, ...); WithConfig covers fields without a
// dedicated option. NewFromConfig remains for one release of grace.
func NewFromConfig(cfg Config) (*Service, error) { return core.NewStorefront(cfg) }

// NewService assembles a Service over a custom document store and origin.
// Register the origin's pages before calling this so its listing queries
// are wired into the invalidation engine.
func NewService(cfg ServiceConfig, docs *DocumentStore, org *Origin) *Service {
	return core.NewService(cfg, docs, org)
}

// NewDocumentStore creates an empty document store on the system clock.
// Pass the service's clock instead when running under simulated time.
func NewDocumentStore() *DocumentStore { return storage.NewDocumentStore(nil) }

// NewOrigin creates an origin server over a document store.
func NewOrigin(docs *DocumentStore) *Origin { return origin.NewServer(docs, nil) }

// ParseQuery parses the query syntax used for listing pages, e.g.
//
//	products WHERE category = "shoes" AND price < 100 ORDER BY price LIMIT 24
func ParseQuery(src string) (Query, error) { return query.Parse(src) }

// NewUsers generates a deterministic user population of size n spread
// across the canonical regions: ~60% logged in, ~80% of those consenting
// to personalization.
func NewUsers(seed int64, n int) []*User { return session.Population(seed, n) }
