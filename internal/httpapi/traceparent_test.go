package httpapi

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"speedkit/internal/tracectx"
)

// TestTraceparentMalformedFallsBackToFreshRoot pins the fail-closed
// half of propagation at the HTTP surface: a damaged traceparent must
// never panic the handler, never be adopted, and never smuggle in a
// sampling decision — the server starts a fresh local root instead.
func TestTraceparentMalformedFallsBackToFreshRoot(t *testing.T) {
	_, ts, _ := newTestAPI(t)

	bogus := []string{
		"",       // absent
		"00",     // truncated at the version
		"00-abc", // truncated trace ID
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",    // missing flags
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0g", // bad flag hex
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // all-zero trace ID
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // all-zero span ID
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", // uppercase hex
		"zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // bad version
	}
	for _, h := range bogus {
		resp, _ := get(t, ts.URL+"/page?path=/product/p00042", tracectx.Header, h)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("traceparent %q: status %d, want 200", h, resp.StatusCode)
		}
	}
	if id, ok := tracectx.ParseTraceID("4bf92f3577b34da6a3ce929d0e0e4736"); !ok {
		t.Fatal("ParseTraceID rejected a well-formed ID")
	} else if n := len(newTestTracerByID(t, ts, id)); n != 0 {
		t.Fatalf("server adopted %d traces from malformed headers carrying that trace ID, want 0", n)
	}
}

// newTestTracerByID queries the /debug/traces/{id} endpoint and returns
// the decoded trace count — exercising the by-ID route end to end.
func newTestTracerByID(t *testing.T, ts *httptest.Server, id tracectx.TraceID) []byte {
	t.Helper()
	resp, body := get(t, ts.URL+"/debug/traces/"+id.String())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces/{id}: status %d", resp.StatusCode)
	}
	if body == "[]\n" || body == "[]" {
		return nil
	}
	return []byte(body)
}

// TestTraceparentUnsampledParentSuppressesServerTrace pins the other
// direction of head-based sampling: a valid parent with the sampled bit
// clear means the whole request is untraced on the server too.
func TestTraceparentUnsampledParentSuppressesServerTrace(t *testing.T) {
	api, ts, _ := newTestAPI(t)

	const header = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00"
	resp, _ := get(t, ts.URL+"/page?path=/product/p00042", tracectx.Header, header)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	id, _ := tracectx.ParseTraceID("4bf92f3577b34da6a3ce929d0e0e4736")
	if got := api.svc.Tracer().ByTraceID(id); len(got) != 0 {
		t.Fatalf("unsampled parent produced %d server traces, want 0", len(got))
	}
}
