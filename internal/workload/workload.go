// Package workload generates the e-commerce traffic that drives every
// experiment: browsing sessions with a home → category → product →
// cart → checkout funnel, Zipf-distributed product popularity, a
// configurable write mix (price/stock updates), optional catalog-import
// write bursts, and a diurnal load curve for the multi-day field
// simulations. Generation is deterministic per seed.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// OpKind classifies one workload operation.
type OpKind int

// Operation kinds.
const (
	// ViewHome is a hit on the home page.
	ViewHome OpKind = iota
	// ViewCategory is a hit on a category listing page.
	ViewCategory
	// ViewProduct is a hit on a product detail page.
	ViewProduct
	// AddToCart mutates on-device cart state (no origin write).
	AddToCart
	// Checkout clears the cart and writes an order.
	Checkout
	// UpdatePrice writes a product's price field.
	UpdatePrice
	// UpdateStock writes a product's stock field.
	UpdateStock
)

// String names the op kind.
func (k OpKind) String() string {
	switch k {
	case ViewHome:
		return "view-home"
	case ViewCategory:
		return "view-category"
	case ViewProduct:
		return "view-product"
	case AddToCart:
		return "add-to-cart"
	case Checkout:
		return "checkout"
	case UpdatePrice:
		return "update-price"
	case UpdateStock:
		return "update-stock"
	}
	return "unknown"
}

// IsWrite reports whether the op mutates origin data.
func (k OpKind) IsWrite() bool { return k == UpdatePrice || k == UpdateStock || k == Checkout }

// Op is one generated operation.
type Op struct {
	Kind OpKind
	// UserIdx selects the acting user for view/cart ops (-1 for backend
	// writes, which no user performs).
	UserIdx int
	// Path is the page hit for view ops.
	Path string
	// ProductID is the affected product for product/cart/write ops.
	ProductID string
	// Category is set for category views.
	Category string
	// Gap is the simulated time since the previous op.
	Gap time.Duration
}

// Categories used by the synthetic catalog.
var Categories = []string{
	"shoes", "shirts", "pants", "hats", "jackets",
	"bags", "watches", "belts", "socks", "scarves",
}

// ProductID renders the canonical product identifier for index i.
func ProductID(i int) string { return fmt.Sprintf("p%05d", i) }

// ProductPath renders the page path for product index i.
func ProductPath(i int) string { return "/product/" + ProductID(i) }

// CategoryPath renders the listing path for a category.
func CategoryPath(cat string) string { return "/category/" + cat }

// CategoryOf assigns product index i to its category.
func CategoryOf(i int) string { return Categories[i%len(Categories)] }

// Config parameterizes a Generator.
type Config struct {
	// Seed makes the stream deterministic.
	Seed int64
	// Products is the catalog size (default 1000).
	Products int
	// Users is the population size (default 100).
	Users int
	// ZipfS is the popularity skew exponent (>1; default 1.07, matching
	// measured web object popularity).
	ZipfS float64
	// WriteFraction is the share of backend write ops (default 0.02 — a
	// few percent of operations are catalog updates, as in production).
	WriteFraction float64
	// MeanOpsPerSecond sets overall load (default 50 ops/s).
	MeanOpsPerSecond float64
	// Diurnal modulates the load with a day/night curve when true.
	Diurnal bool
	// BurstEvery injects a catalog-import burst (BurstSize rapid writes)
	// at this interval. Zero disables bursts.
	BurstEvery time.Duration
	// BurstSize is the number of writes per burst (default 50).
	BurstSize int
}

func (c *Config) applyDefaults() {
	if c.Products <= 0 {
		c.Products = 1000
	}
	if c.Users <= 0 {
		c.Users = 100
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.07
	}
	if c.WriteFraction < 0 || c.WriteFraction >= 1 {
		c.WriteFraction = 0.02
	}
	if c.MeanOpsPerSecond <= 0 {
		c.MeanOpsPerSecond = 50
	}
	if c.BurstSize <= 0 {
		c.BurstSize = 50
	}
}

// funnel stages per user.
type stage int

const (
	stageIdle stage = iota
	stageBrowsing
	stageProduct
	stageCart
)

// Generator produces a deterministic op stream. Not safe for concurrent
// use — each load generator owns one.
type Generator struct {
	cfg     Config
	rng     *rand.Rand
	zipf    *rand.Zipf
	stages  []stage
	lastCat []string // last category each user browsed
	lastPid []int    // last product each user viewed
	elapsed time.Duration
	burst   int // remaining burst writes to emit
}

// NewGenerator creates a generator from cfg.
func NewGenerator(cfg Config) *Generator {
	cfg.applyDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &Generator{
		cfg:     cfg,
		rng:     rng,
		zipf:    rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Products-1)),
		stages:  make([]stage, cfg.Users),
		lastCat: make([]string, cfg.Users),
		lastPid: make([]int, cfg.Users),
	}
}

// loadFactor returns the diurnal multiplier at the generator's elapsed
// time: a sinusoid between 0.25 (midnight) and 1.75 (noon).
func (g *Generator) loadFactor() float64 {
	if !g.cfg.Diurnal {
		return 1
	}
	dayFrac := math.Mod(g.elapsed.Hours(), 24) / 24
	return 1 + 0.75*math.Sin(2*math.Pi*(dayFrac-0.25))
}

// nextGap samples the exponential inter-arrival gap at current load.
func (g *Generator) nextGap() time.Duration {
	rate := g.cfg.MeanOpsPerSecond * g.loadFactor()
	gap := g.rng.ExpFloat64() / rate
	return time.Duration(gap * float64(time.Second))
}

// pickProduct draws a Zipf-popular product index.
func (g *Generator) pickProduct() int { return int(g.zipf.Uint64()) }

// Next produces the next operation in the stream.
func (g *Generator) Next() Op {
	gap := g.nextGap()
	g.elapsed += gap

	// Burst mode: emit pending catalog-import writes back to back.
	if g.burst > 0 {
		g.burst--
		return g.writeOp(time.Millisecond)
	}
	if g.cfg.BurstEvery > 0 {
		prev := g.elapsed - gap
		if prev/g.cfg.BurstEvery != g.elapsed/g.cfg.BurstEvery {
			g.burst = g.cfg.BurstSize - 1
			return g.writeOp(gap)
		}
	}

	if g.rng.Float64() < g.cfg.WriteFraction {
		return g.writeOp(gap)
	}
	return g.sessionOp(gap)
}

func (g *Generator) writeOp(gap time.Duration) Op {
	pid := g.pickProduct()
	kind := UpdatePrice
	if g.rng.Float64() < 0.4 {
		kind = UpdateStock
	}
	return Op{Kind: kind, UserIdx: -1, ProductID: ProductID(pid), Gap: gap}
}

// sessionOp advances one user's funnel state machine.
func (g *Generator) sessionOp(gap time.Duration) Op {
	u := g.rng.Intn(g.cfg.Users)
	switch g.stages[u] {
	case stageIdle:
		g.stages[u] = stageBrowsing
		return Op{Kind: ViewHome, UserIdx: u, Path: "/", Gap: gap}
	case stageBrowsing:
		// Mostly proceed to a category; sometimes bounce back to idle.
		if g.rng.Float64() < 0.15 {
			g.stages[u] = stageIdle
			return Op{Kind: ViewHome, UserIdx: u, Path: "/", Gap: gap}
		}
		cat := CategoryOf(g.pickProduct())
		g.lastCat[u] = cat
		g.stages[u] = stageProduct
		return Op{Kind: ViewCategory, UserIdx: u, Path: CategoryPath(cat), Category: cat, Gap: gap}
	case stageProduct:
		pid := g.pickProduct()
		g.lastPid[u] = pid
		// 30% of product views lead toward the cart.
		if g.rng.Float64() < 0.3 {
			g.stages[u] = stageCart
		} else if g.rng.Float64() < 0.4 {
			g.stages[u] = stageBrowsing
		}
		return Op{Kind: ViewProduct, UserIdx: u, Path: ProductPath(pid),
			ProductID: ProductID(pid), Category: CategoryOf(pid), Gap: gap}
	default: // stageCart
		if g.rng.Float64() < 0.35 {
			g.stages[u] = stageIdle
			return Op{Kind: Checkout, UserIdx: u, Gap: gap}
		}
		g.stages[u] = stageProduct
		return Op{Kind: AddToCart, UserIdx: u,
			ProductID: ProductID(g.lastPid[u]), Gap: gap}
	}
}

// Elapsed returns the simulated time the stream has covered so far.
func (g *Generator) Elapsed() time.Duration { return g.elapsed }

// Take returns the next n ops as a slice.
func (g *Generator) Take(n int) []Op {
	out := make([]Op, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}
