package lint

import (
	"strings"

	"speedkit/internal/lint/dataflow"
)

// HotPathAlloc protects the measured fast paths by construction. A
// function annotated
//
//	//speedkit:hotpath
//
// in its doc comment promises the ~tens-of-nanoseconds budget the perf
// work established for reads; this analyzer rejects anything that breaks
// that promise: heap allocation (make, new, map/slice literals, &T{...}
// escapes, string concatenation and conversions, closures), interface
// boxing of concrete values, defer records, goroutine spawns — and,
// through the same bottom-up summaries the taint engine uses, calls to
// module-local helpers that do any of the above, however deep.
//
// Allocation inside a callee is reported at the hot function's call
// site with the call chain, so the finding lands where the budget is
// owned. Cold paths called conditionally from a hot function must be
// factored into unannotated helpers behind a //lint:ignore with a
// reason, keeping every exemption auditable.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc: "functions annotated //speedkit:hotpath must not allocate, box " +
		"into interfaces, defer, or spawn goroutines — directly or via " +
		"module-local callees",
	RunModule: runHotPathAlloc,
}

func runHotPathAlloc(mp *ModulePass) {
	dpkgs := dataflowPackages(mp.Pkgs)
	if len(dpkgs) == 0 {
		return
	}
	prog := dataflow.NewProgram(dpkgs)
	aa := dataflow.NewAllocAnalysis(prog)
	for _, pkg := range prog.Pkgs {
		for _, fi := range prog.FuncsOf(pkg) {
			if !fi.HasDirective("speedkit:hotpath") {
				continue
			}
			for _, f := range aa.Findings(fi) {
				if len(f.Chain) > 0 {
					mp.Reportf(pkg.Fset, f.Pos, "hot path %s: %s via %s",
						fi.Name(), f.Reason, strings.Join(f.Chain, " -> "))
				} else {
					mp.Reportf(pkg.Fset, f.Pos, "hot path %s: %s", fi.Name(), f.Reason)
				}
			}
		}
	}
}
