package bench

import (
	"fmt"
	"strings"
	"time"

	"speedkit/internal/gdpr"
	"speedkit/internal/netsim"
	"speedkit/internal/proxy"
	"speedkit/internal/ttl"
)

// Scale shrinks or grows every experiment's op counts at once; the bench
// harness uses 1.0, unit tests use smaller factors for speed.
type Scale float64

func (s Scale) ops(n int) int {
	if s <= 0 {
		s = 1
	}
	v := int(float64(n) * float64(s))
	if v < 500 {
		v = 500
	}
	return v
}

// --- Table 1: cache-tier hit ratios and latencies --------------------------

// Table1Row is one serving tier's line.
type Table1Row struct {
	Tier  proxy.Source
	Share float64
	P50ms float64
	P99ms float64
}

// Table1Result is the tier breakdown of a Speed Kit deployment.
type Table1Result struct {
	Rows     []Table1Row
	HitRatio float64
	Loads    uint64
}

// RunTable1 reproduces Table 1: where do page loads get served, at what
// latency, under the standard e-commerce workload.
func RunTable1(seed int64, scale Scale) (*Table1Result, error) {
	r, err := RunField(FieldConfig{Mode: ModeSpeedKit, Seed: seed, Ops: scale.ops(100000)})
	if err != nil {
		return nil, err
	}
	out := &Table1Result{HitRatio: r.HitRatio(), Loads: r.Loads}
	for _, tier := range []proxy.Source{proxy.SourceDevice, proxy.SourceCDN, proxy.SourceOrigin} {
		h := r.LatencyByTier[tier]
		out.Rows = append(out.Rows, Table1Row{
			Tier:  tier,
			Share: float64(r.TierCounts[tier]) / float64(r.Loads),
			P50ms: h.Quantile(0.5) / 1000,
			P99ms: h.Quantile(0.99) / 1000,
		})
	}
	return out, nil
}

// String renders the table.
func (t *Table1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 — cache-tier breakdown (%d loads, overall hit ratio %.1f%%)\n", t.Loads, t.HitRatio*100)
	fmt.Fprintf(&b, "%-8s %8s %10s %10s\n", "tier", "share", "p50 [ms]", "p99 [ms]")
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "%-8s %7.1f%% %10.1f %10.1f\n", row.Tier, row.Share*100, row.P50ms, row.P99ms)
	}
	return b.String()
}

// --- Table 2: consistency under writes --------------------------------------

// Table2Row compares one configuration's consistency outcome.
type Table2Row struct {
	System       string
	Delta        time.Duration // 0 for the TTL-only baseline
	StaleRate    float64
	MaxStaleness time.Duration
	HitRatio     float64
}

// Table2Result holds the consistency comparison.
type Table2Result struct {
	Rows          []Table2Row
	WriteFraction float64
}

// RunTable2 reproduces Table 2: stale-read rate and worst-case staleness
// for the TTL-only baseline versus the Cache Sketch at several Δ.
func RunTable2(seed int64, scale Scale) (*Table2Result, error) {
	const writes = 0.05
	out := &Table2Result{WriteFraction: writes}
	ops := scale.ops(30000)

	base, err := RunField(FieldConfig{Mode: ModeTTLOnly, Seed: seed, Ops: ops, WriteFraction: writes})
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, Table2Row{
		System: "ttl-only (60s)", StaleRate: base.StaleRate(),
		MaxStaleness: base.MaxStaleness, HitRatio: base.HitRatio(),
	})
	for _, delta := range []time.Duration{time.Second, 5 * time.Second, 30 * time.Second, 60 * time.Second} {
		r, err := RunField(FieldConfig{Mode: ModeSpeedKit, Seed: seed, Ops: ops,
			WriteFraction: writes, Delta: delta})
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, Table2Row{
			System: "cache-sketch", Delta: delta, StaleRate: r.StaleRate(),
			MaxStaleness: r.MaxStaleness, HitRatio: r.HitRatio(),
		})
	}
	return out, nil
}

// String renders the table.
func (t *Table2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2 — consistency under %.0f%% writes\n", t.WriteFraction*100)
	fmt.Fprintf(&b, "%-16s %8s %12s %14s %10s\n", "system", "Δ", "stale reads", "max staleness", "hit ratio")
	for _, r := range t.Rows {
		d := "—"
		if r.Delta > 0 {
			d = r.Delta.String()
		}
		fmt.Fprintf(&b, "%-16s %8s %11.2f%% %14s %9.1f%%\n",
			r.System, d, r.StaleRate*100, r.MaxStaleness.Round(time.Millisecond), r.HitRatio*100)
	}
	return b.String()
}

// --- Table 3: GDPR compliance ------------------------------------------------

// Table3Row is one architecture's boundary audit.
type Table3Row struct {
	System          string
	CDNRequests     uint64
	CDNWithPII      uint64
	CDNPIIFields    uint64
	TopLeakedFields []string
	Compliant       bool
}

// Table3Result compares PII exposure across architectures.
type Table3Result struct{ Rows []Table3Row }

// RunTable3 reproduces Table 3: what crosses the shared CDN boundary
// under the legacy personalizing CDN versus Speed Kit.
func RunTable3(seed int64, scale Scale) (*Table3Result, error) {
	out := &Table3Result{}
	ops := scale.ops(20000)
	for _, mode := range []ClientMode{ModeLegacy, ModeSpeedKit} {
		r, err := RunField(FieldConfig{Mode: mode, Seed: seed, Ops: ops})
		if err != nil {
			return nil, err
		}
		rep := r.Service.Auditor().Report(gdpr.BoundaryCDN)
		top := rep.TopPIIFields
		if len(top) > 3 {
			top = top[:3]
		}
		out.Rows = append(out.Rows, Table3Row{
			System:          mode.String(),
			CDNRequests:     rep.Requests,
			CDNWithPII:      rep.RequestsWithPII,
			CDNPIIFields:    rep.PIIFieldCount,
			TopLeakedFields: top,
			Compliant:       r.Service.Auditor().Compliant(),
		})
	}
	return out, nil
}

// String renders the table.
func (t *Table3Result) String() string {
	var b strings.Builder
	b.WriteString("Table 3 — PII crossing the shared CDN boundary\n")
	fmt.Fprintf(&b, "%-12s %10s %12s %12s %-20s %s\n",
		"system", "requests", "w/ PII", "PII fields", "top leaked", "compliant")
	for _, r := range t.Rows {
		top := strings.Join(r.TopLeakedFields, ",")
		if top == "" {
			top = "—"
		}
		fmt.Fprintf(&b, "%-12s %10d %12d %12d %-20s %v\n",
			r.System, r.CDNRequests, r.CDNWithPII, r.CDNPIIFields, top, r.Compliant)
	}
	return b.String()
}

// --- Figure 4: page-load time by geography ----------------------------------

// Figure4Point is one (region, system) latency summary.
type Figure4Point struct {
	Region              netsim.Region
	System              ClientMode
	P50ms, P90ms, P99ms float64
}

// Figure4Result is the geography × system latency matrix.
type Figure4Result struct{ Points []Figure4Point }

// RunFigure4 reproduces Figure 4: page-load-time distributions with and
// without Speed Kit, by client geography.
func RunFigure4(seed int64, scale Scale) (*Figure4Result, error) {
	out := &Figure4Result{}
	ops := scale.ops(40000)
	for _, mode := range []ClientMode{ModeDirect, ModeLegacy, ModeSpeedKit} {
		r, err := RunField(FieldConfig{Mode: mode, Seed: seed, Ops: ops})
		if err != nil {
			return nil, err
		}
		for _, region := range netsim.Regions() {
			h := r.LatencyByRegion[region]
			qs := h.Quantiles(0.5, 0.9, 0.99)
			out.Points = append(out.Points, Figure4Point{
				Region: region, System: mode,
				P50ms: qs[0] / 1000, P90ms: qs[1] / 1000, P99ms: qs[2] / 1000,
			})
		}
	}
	return out, nil
}

// String renders the series.
func (f *Figure4Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 4 — page-load time by geography [ms]\n")
	fmt.Fprintf(&b, "%-6s %-12s %8s %8s %8s\n", "region", "system", "p50", "p90", "p99")
	for _, p := range f.Points {
		fmt.Fprintf(&b, "%-6s %-12s %8.1f %8.1f %8.1f\n", p.Region, p.System, p.P50ms, p.P90ms, p.P99ms)
	}
	return b.String()
}

// --- Figure 5: Δ sweep --------------------------------------------------------

// Figure5Point is one Δ setting's outcome.
type Figure5Point struct {
	Delta           time.Duration
	HitRatio        float64
	StaleRate       float64
	MaxStaleness    time.Duration
	SketchRefreshes uint64
}

// Figure5Result is the Δ sweep.
type Figure5Result struct{ Points []Figure5Point }

// RunFigure5 reproduces Figure 5: how the refresh interval Δ trades
// sketch traffic against bounded staleness.
func RunFigure5(seed int64, scale Scale) (*Figure5Result, error) {
	out := &Figure5Result{}
	ops := scale.ops(25000)
	for _, delta := range []time.Duration{time.Second, 5 * time.Second, 15 * time.Second,
		30 * time.Second, 60 * time.Second, 120 * time.Second} {
		r, err := RunField(FieldConfig{Mode: ModeSpeedKit, Seed: seed, Ops: ops,
			Delta: delta, WriteFraction: 0.05})
		if err != nil {
			return nil, err
		}
		out.Points = append(out.Points, Figure5Point{
			Delta: delta, HitRatio: r.HitRatio(), StaleRate: r.StaleRate(),
			MaxStaleness: r.MaxStaleness, SketchRefreshes: r.SketchRefreshes,
		})
	}
	return out, nil
}

// String renders the series.
func (f *Figure5Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 5 — Δ sweep (5% writes)\n")
	fmt.Fprintf(&b, "%8s %10s %12s %14s %16s\n", "Δ", "hit ratio", "stale reads", "max staleness", "sketch fetches")
	for _, p := range f.Points {
		fmt.Fprintf(&b, "%8s %9.1f%% %11.2f%% %14s %16d\n",
			p.Delta, p.HitRatio*100, p.StaleRate*100, p.MaxStaleness.Round(time.Millisecond), p.SketchRefreshes)
	}
	return b.String()
}

// --- Figure 7: TTL policies ----------------------------------------------------

// Figure7Point is one TTL policy's outcome.
type Figure7Point struct {
	Policy        string
	HitRatio      float64
	OriginFetches uint64
	Invalidations uint64
	StaleRate     float64
}

// Figure7Result compares TTL policies.
type Figure7Result struct{ Points []Figure7Point }

// RunFigure7 reproduces Figure 7: adaptive TTL estimation versus static
// TTLs on the combined miss/invalidation cost.
func RunFigure7(seed int64, scale Scale) (*Figure7Result, error) {
	out := &Figure7Result{}
	ops := scale.ops(30000)
	policies := []struct {
		name string
		src  ttl.TTLSource
	}{
		{"static-10s", ttl.Static(10 * time.Second)},
		{"static-60s", ttl.Static(60 * time.Second)},
		{"static-1h", ttl.Static(time.Hour)},
		{"adaptive", nil},
	}
	for _, p := range policies {
		r, err := RunField(FieldConfig{Mode: ModeSpeedKit, Seed: seed, Ops: ops,
			TTLSource: p.src, WriteFraction: 0.05})
		if err != nil {
			return nil, err
		}
		st := r.Service.SketchServer().Stats()
		out.Points = append(out.Points, Figure7Point{
			Policy:        p.name,
			HitRatio:      r.HitRatio(),
			OriginFetches: r.TierCounts[proxy.SourceOrigin],
			Invalidations: st.Adds + st.Extends,
			StaleRate:     r.StaleRate(),
		})
	}
	return out, nil
}

// String renders the series.
func (f *Figure7Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 7 — TTL policy comparison (5% writes)\n")
	fmt.Fprintf(&b, "%-12s %10s %14s %14s %12s\n", "policy", "hit ratio", "origin fetch", "sketch load", "stale reads")
	for _, p := range f.Points {
		fmt.Fprintf(&b, "%-12s %9.1f%% %14d %14d %11.2f%%\n",
			p.Policy, p.HitRatio*100, p.OriginFetches, p.Invalidations, p.StaleRate*100)
	}
	return b.String()
}

// --- Figure 9: A/B field simulation --------------------------------------------

// Figure9Arm is one experiment arm's field outcome.
type Figure9Arm struct {
	System       ClientMode
	P50ms, P90ms float64
	BounceRate   float64
	Checkouts    uint64
	Loads        uint64
}

// Figure9Result is the A/B comparison.
type Figure9Result struct {
	Arms       []Figure9Arm
	SimulatedH float64
	// CheckoutUplift is (speedkit − control) / control.
	CheckoutUplift float64
}

// RunFigure9 reproduces Figure 9: the production A/B test — half the
// traffic accelerated, half direct — over a multi-day diurnal workload,
// reporting load-time and conversion-proxy uplift.
func RunFigure9(seed int64, scale Scale) (*Figure9Result, error) {
	out := &Figure9Result{}
	ops := scale.ops(60000)
	var control, treated *FieldResult
	for _, mode := range []ClientMode{ModeDirect, ModeSpeedKit} {
		r, err := RunField(FieldConfig{Mode: mode, Seed: seed, Ops: ops,
			Diurnal: true, BounceModel: true, MeanOpsPerSecond: 20})
		if err != nil {
			return nil, err
		}
		qs := r.Latency.Quantiles(0.5, 0.9)
		arm := Figure9Arm{
			System: mode,
			P50ms:  qs[0] / 1000, P90ms: qs[1] / 1000,
			BounceRate: float64(r.Bounces) / float64(r.Loads),
			Checkouts:  r.Checkouts,
			Loads:      r.Loads,
		}
		out.Arms = append(out.Arms, arm)
		out.SimulatedH = r.SimulatedDuration.Hours()
		if mode == ModeDirect {
			control = r
		} else {
			treated = r
		}
	}
	if control != nil && treated != nil && control.Checkouts > 0 {
		out.CheckoutUplift = (float64(treated.Checkouts) - float64(control.Checkouts)) / float64(control.Checkouts)
	}
	return out, nil
}

// String renders the comparison.
func (f *Figure9Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9 — A/B field simulation (%.0f simulated hours)\n", f.SimulatedH)
	fmt.Fprintf(&b, "%-10s %10s %10s %12s %11s\n", "arm", "p50 [ms]", "p90 [ms]", "bounce rate", "checkouts")
	for _, a := range f.Arms {
		fmt.Fprintf(&b, "%-10s %10.1f %10.1f %11.2f%% %11d\n",
			a.System, a.P50ms, a.P90ms, a.BounceRate*100, a.Checkouts)
	}
	fmt.Fprintf(&b, "checkout uplift (speedkit vs direct): %+.1f%%\n", f.CheckoutUplift*100)
	return b.String()
}
