// Package hotpathalloc is the fixture for the hot-path allocation
// analyzer: direct allocations, interface boxing, defers, transitive
// allocation through module-local callees, and suppression.
package hotpathalloc

import "sync"

type entry struct {
	k string
	v int
}

//speedkit:hotpath
func DirectAllocs(keys []string) []string {
	out := make([]string, 0, len(keys)) // want "heap allocation \\(make\\)"
	for _, k := range keys {
		out = append(out, k) // want "append may grow"
	}
	return out
}

//speedkit:hotpath
func DeferInHotPath(mu *sync.Mutex) {
	mu.Lock()
	defer mu.Unlock() // want "defer in hot path"
}

//speedkit:hotpath
func BoxReturn(n int) interface{} {
	return n // want "interface boxing"
}

//speedkit:hotpath
func BoxArg(n int) {
	use(n) // want "interface boxing"
}

func use(v interface{}) {}

//speedkit:hotpath
func StringConcat(a, b string) string {
	return a + b // want "string concatenation"
}

//speedkit:hotpath
func ByteConversion(s string) []byte {
	return []byte(s) // want "conversion allocates"
}

// Transitive: the hot function itself is clean syntax-wise, but a
// module-local callee allocates; the finding lands at the call site with
// the chain.
//
//speedkit:hotpath
func Transitive(k string) int {
	return helper(k) // want "heap allocation \\(make\\) via hotpathalloc.helper"
}

func helper(k string) int {
	m := make(map[string]int)
	m[k] = 1
	return m[k]
}

// Unannotated functions allocate freely: no findings.
func coldPath() []int { return make([]int, 8) }

// Pointer values are interface-word-shaped: storing them boxes nothing.
//
//speedkit:hotpath
func PointerArgOK(e *entry) {
	use(e)
}

//speedkit:hotpath
func CleanHot(e *entry) int {
	return e.v
}

//speedkit:hotpath
func SuppressedHot() *entry {
	//lint:ignore hotpathalloc fixture demonstrates an audited exemption
	return &entry{k: "x"}
}
