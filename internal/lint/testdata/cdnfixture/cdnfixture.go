// Package cdnfixture seeds gdprboundary violations. The fixture test
// loads it under the synthetic import path "fixture/internal/cdn", so the
// analyzer treats it as shared infrastructure.
package cdnfixture

import (
	"speedkit/internal/session" // want "identity-bearing package"
)

// Edge exposes a PII-classified field in a shared-infrastructure API.
type Edge struct {
	Email string // want "PII field"
	Path  string
}

// Profile shows the canonical-name mapping: UserID matches the "user_id"
// classification.
type Profile struct {
	UserID string // want "PII field"
}

// Serve handles anonymous content only: no finding.
func Serve(path string) string { return path }

// Asset is an anonymous record: no finding.
type Asset struct {
	Path  string
	Bytes int
}

var _ *session.User
