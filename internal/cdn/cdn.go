// Package cdn simulates the content delivery network tier: one edge cache
// per region, TTL-based expiration, and an instant purge API. It stands in
// for the commercial CDN the production system runs on (see DESIGN.md's
// substitution table) and reproduces the two semantics the coherence
// protocol depends on: copies live until their TTL unless purged, and a
// purge only affects copies stored before it was issued.
//
// Purges carry a configurable propagation delay (default 10 ms, matching
// published instant-purge latencies) so that the invalidation-pipeline
// experiments can measure end-to-end detection-to-purge latency honestly.
package cdn

import (
	"container/heap"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"speedkit/internal/cache"
	"speedkit/internal/clock"
	"speedkit/internal/netsim"
)

// Config parameterizes the CDN.
type Config struct {
	// Regions to deploy edges in (default: all canonical regions).
	Regions []netsim.Region
	// EdgeMaxItems bounds each edge cache's entry count (default 100000).
	EdgeMaxItems int
	// EdgeMaxBytes bounds each edge cache's size (0 = unlimited).
	EdgeMaxBytes int
	// PurgeDelay is how long a purge takes to reach the edges
	// (default 10ms).
	PurgeDelay time.Duration
	// Clock supplies time (default coarse system clock).
	Clock clock.Clock
	// EdgeShards is the lock-stripe count for each edge's cache store
	// (default 16; see cache.Config.Shards). Set to 1 for the exact
	// global eviction order of the pre-sharded CDN.
	EdgeShards int
}

func (c *Config) applyDefaults() {
	if len(c.Regions) == 0 {
		c.Regions = netsim.Regions()
	}
	if c.EdgeMaxItems == 0 {
		c.EdgeMaxItems = 100000
	}
	if c.PurgeDelay == 0 {
		c.PurgeDelay = 10 * time.Millisecond
	}
	if c.Clock == nil {
		c.Clock = clock.CoarseSystem
	}
	if c.EdgeShards == 0 {
		c.EdgeShards = 16
	}
}

// Stats aggregates CDN activity.
type Stats struct {
	Hits, Misses, Fills, Purges, PurgedEntries uint64
}

// HitRatio returns hits/(hits+misses).
func (s Stats) HitRatio() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// CDN is the multi-PoP edge network. Safe for concurrent use.
//
// Concurrency layout: the edge map is immutable after New, each PoP's
// cache store synchronizes itself (lock-striped internally), the
// aggregate counters are atomics, and only the pending-purge heap sits
// behind a mutex — with an atomic length fast path so the common case
// (no purge in flight) costs a single load on every Lookup. A Lookup on
// one PoP therefore never contends with traffic on another PoP.
type CDN struct {
	cfg   Config
	edges map[netsim.Region]*Edge // immutable after New

	pmu     sync.Mutex
	purges  purgeHeap    // guarded by pmu
	pending atomic.Int64 // len(purges), for the lock-free fast path

	hits, misses, fills         atomic.Uint64
	purgesIssued, purgedEntries atomic.Uint64
}

// Edge is one point of presence.
type Edge struct {
	Region netsim.Region
	store  *cache.Store
	cdn    *CDN
}

type purgeEvent struct {
	key         string
	issuedAt    time.Time
	effectiveAt time.Time
}

type purgeHeap []purgeEvent

func (h purgeHeap) Len() int           { return len(h) }
func (h purgeHeap) Less(i, j int) bool { return h[i].effectiveAt.Before(h[j].effectiveAt) }
func (h purgeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *purgeHeap) Push(x any)        { *h = append(*h, x.(purgeEvent)) }
func (h *purgeHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// New builds the CDN from cfg.
func New(cfg Config) *CDN {
	cfg.applyDefaults()
	c := &CDN{cfg: cfg, edges: make(map[netsim.Region]*Edge, len(cfg.Regions))}
	for _, r := range cfg.Regions {
		c.edges[r] = &Edge{
			Region: r,
			store: cache.New(cache.Config{
				MaxItems: cfg.EdgeMaxItems,
				MaxBytes: cfg.EdgeMaxBytes,
				Clock:    cfg.Clock,
				Shards:   cfg.EdgeShards,
			}),
			cdn: c,
		}
	}
	return c
}

// Edge returns the PoP for region r (nil if not deployed). The edge map
// is immutable after New, so no lock is needed.
func (c *CDN) Edge(r netsim.Region) *Edge {
	return c.edges[r]
}

// Regions lists deployed regions, sorted for stable reports.
func (c *CDN) Regions() []netsim.Region {
	out := make([]netsim.Region, 0, len(c.edges))
	for r := range c.edges {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// applyDuePurges executes purges whose propagation delay has passed. A
// purge removes an entry only if the entry was stored at or before the
// purge was issued: copies fetched after the write are already fresh.
// The fast path — no purge in flight — is a single atomic load.
func (c *CDN) applyDuePurges(now time.Time) {
	if c.pending.Load() == 0 {
		return
	}
	c.pmu.Lock()
	defer c.pmu.Unlock()
	for len(c.purges) > 0 && !c.purges[0].effectiveAt.After(now) {
		ev := heap.Pop(&c.purges).(purgeEvent)
		c.pending.Add(-1)
		for _, e := range c.edges {
			if entry, ok := e.store.Peek(ev.key); ok && !entry.StoredAt.After(ev.issuedAt) {
				e.store.Delete(ev.key)
				c.purgedEntries.Add(1)
			}
		}
	}
}

// Lookup serves key from the edge, honoring pending purges. Lookups on
// different PoPs (or different keys of one PoP's striped store) proceed
// in parallel; only the key's own cache stripe is locked.
func (e *Edge) Lookup(key string) (cache.Entry, bool) {
	now := e.cdn.cfg.Clock.Now()
	e.cdn.applyDuePurges(now)
	entry, ok := e.store.Get(key)
	if ok {
		e.cdn.hits.Add(1)
	} else {
		e.cdn.misses.Add(1)
	}
	return entry, ok
}

// Fill stores an entry at this edge (an origin fetch completing).
func (e *Edge) Fill(entry cache.Entry) {
	e.store.Put(entry)
	e.cdn.fills.Add(1)
}

// Store exposes the edge's cache store for inspection in tests.
func (e *Edge) Store() *cache.Store { return e.store }

// Purge schedules removal of key from every edge after the propagation
// delay. Returns the instant the purge becomes effective.
func (c *CDN) Purge(key string) time.Time {
	now := c.cfg.Clock.Now()
	eff := now.Add(c.cfg.PurgeDelay)
	c.pmu.Lock()
	heap.Push(&c.purges, purgeEvent{key: key, issuedAt: now, effectiveAt: eff})
	c.pending.Add(1)
	c.pmu.Unlock()
	c.purgesIssued.Add(1)
	return eff
}

// PurgeAll drops every entry from every edge immediately.
func (c *CDN) PurgeAll() {
	c.pmu.Lock()
	c.purges = c.purges[:0]
	c.pending.Store(0)
	c.pmu.Unlock()
	for _, e := range c.edges {
		e.store.Clear()
	}
}

// Stats returns a copy of the aggregate counters after applying due
// purges.
func (c *CDN) Stats() Stats {
	now := c.cfg.Clock.Now()
	c.applyDuePurges(now)
	return Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Fills:         c.fills.Load(),
		Purges:        c.purgesIssued.Load(),
		PurgedEntries: c.purgedEntries.Load(),
	}
}

// EdgeStats returns the cache-level stats of the edge in region r.
func (c *CDN) EdgeStats(r netsim.Region) cache.Stats {
	e, ok := c.edges[r]
	if !ok {
		return cache.Stats{}
	}
	return e.store.Stats()
}
