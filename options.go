package speedkit

import (
	"time"

	"speedkit/internal/clock"
	"speedkit/internal/core"
	"speedkit/internal/durable"
	"speedkit/internal/faults"
	"speedkit/internal/ttl"
)

// Option configures New. Options wrap the underlying config structs so
// the common deployments read as a sentence; the full structs remain
// reachable through WithConfig for settings without a dedicated option.
type Option func(*options)

type options struct {
	cfg     Config
	dataDir string
}

// WithProducts sizes the seeded catalog (default 1000).
func WithProducts(n int) Option {
	return func(o *options) { o.cfg.Products = n }
}

// WithDelta sets the staleness bound Δ handed to devices (default 60 s).
func WithDelta(d time.Duration) Option {
	return func(o *options) { o.cfg.Delta = d }
}

// WithClock drives the whole deployment from c — pass a simulated clock
// for deterministic runs (the default is a fresh simulated clock; real
// servers pass clock.System).
func WithClock(c clock.Clock) Option {
	return func(o *options) { o.cfg.Clock = c }
}

// WithSeed makes service-side randomness deterministic.
func WithSeed(seed int64) Option {
	return func(o *options) { o.cfg.Seed = seed }
}

// WithDataDir persists the coherence state (sketch journal, watermarks)
// under dir and recovers it at startup. The durable store runs on the
// deployment clock; combine with WithClock(clock.System) for a real
// server (a data directory under simulated time is only useful in
// crash-recovery tests).
func WithDataDir(dir string) Option {
	return func(o *options) { o.dataDir = dir }
}

// WithResilience tunes the retry/backoff, latency-budget, and
// circuit-breaker layer of devices created by NewDevice.
func WithResilience(rc ResilienceConfig) Option {
	return func(o *options) { o.cfg.DeviceResilience = rc }
}

// WithStaticTTL replaces the adaptive TTL estimator with a fixed TTL
// (baseline configurations).
func WithStaticTTL(d time.Duration) Option {
	return func(o *options) { o.cfg.TTLSource = ttl.Static(d) }
}

// WithFaults installs a deterministic fault injector (chaos runs).
func WithFaults(inj *faults.Injector) Option {
	return func(o *options) { o.cfg.Faults = inj }
}

// WithoutInvalidation disables the server-side coherence pipeline —
// caches converge by TTL alone, modeling a traditional CDN baseline.
func WithoutInvalidation() Option {
	return func(o *options) { o.cfg.DisableInvalidation = true }
}

// WithConfig applies a full raw config, for the settings that have no
// dedicated option. It composes: later options override its fields.
func WithConfig(cfg Config) Option {
	return func(o *options) { o.cfg = cfg }
}

// New builds the canonical storefront deployment: seeded catalog, home /
// category / product pages, the built-in dynamic blocks, and a fully
// wired Service. Close it when done.
//
//	svc, err := speedkit.New(speedkit.WithProducts(1000), speedkit.WithDelta(30*time.Second))
func New(opts ...Option) (*Service, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	if o.dataDir != "" && o.cfg.Durable == nil {
		clk := o.cfg.Clock
		if clk == nil {
			// Persistence implies a real deployment: default the whole
			// service onto the wall clock rather than splitting the
			// durable store and the service across two time sources.
			clk = clock.System
			o.cfg.Clock = clk
		}
		delta := o.cfg.Delta
		if delta <= 0 {
			delta = 60 * time.Second
		}
		o.cfg.Durable = durable.New(durable.Config{
			Dir:        o.dataDir,
			Clock:      clk,
			ColdWindow: delta,
			// A lost cache-fill report can hide a stale copy for up to
			// the TTL it was issued with; the adaptive estimator caps
			// at 24h.
			BlindHorizon: 24 * time.Hour,
		})
	}
	return core.NewStorefront(o.cfg)
}
