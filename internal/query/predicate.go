// Package query implements the predicate language shared by the polyglot
// document store and the real-time invalidation engine. Speed Kit caches
// query results (product listings, category pages) in addition to single
// resources; deciding whether a database write invalidates a cached query
// result requires evaluating the query's predicate against the before- and
// after-images of the changed document. This package provides that
// predicate AST, a small text syntax for it, and deterministic
// canonicalization so that equivalent queries share one cache entry.
package query

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Op enumerates comparison operators.
type Op int

// Comparison operators supported by predicates.
const (
	OpEq Op = iota
	OpNe
	OpGt
	OpGte
	OpLt
	OpLte
	OpIn
	OpExists
	OpPrefix
	OpContains
)

var opNames = map[Op]string{
	OpEq: "=", OpNe: "!=", OpGt: ">", OpGte: ">=", OpLt: "<", OpLte: "<=",
	OpIn: "IN", OpExists: "EXISTS", OpPrefix: "PREFIX", OpContains: "CONTAINS",
}

// String returns the operator's surface syntax.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Predicate is a boolean condition over a document.
type Predicate interface {
	// Match reports whether the document satisfies the predicate.
	Match(doc map[string]any) bool
	// Canonical renders a normalized form: AND/OR operands sorted, values
	// formatted deterministically. Equal canonical strings imply equal
	// predicates (the converse need not hold).
	Canonical() string
	// Fields appends the set of field names the predicate reads to dst.
	Fields(dst map[string]struct{})
}

// Cmp is a single field comparison.
type Cmp struct {
	Field string
	Op    Op
	Value any   // scalar for most ops; ignored for OpExists
	Set   []any // operands for OpIn
}

// Field comparison constructors keep call sites terse and make it hard to
// build a Cmp with an inconsistent Op/Value combination.

// Eq matches documents where field equals v.
func Eq(field string, v any) Predicate { return &Cmp{Field: field, Op: OpEq, Value: v} }

// Ne matches documents where field differs from v (missing fields match).
func Ne(field string, v any) Predicate { return &Cmp{Field: field, Op: OpNe, Value: v} }

// Gt matches documents where field > v.
func Gt(field string, v any) Predicate { return &Cmp{Field: field, Op: OpGt, Value: v} }

// Gte matches documents where field >= v.
func Gte(field string, v any) Predicate { return &Cmp{Field: field, Op: OpGte, Value: v} }

// Lt matches documents where field < v.
func Lt(field string, v any) Predicate { return &Cmp{Field: field, Op: OpLt, Value: v} }

// Lte matches documents where field <= v.
func Lte(field string, v any) Predicate { return &Cmp{Field: field, Op: OpLte, Value: v} }

// In matches documents where field equals any of vs.
func In(field string, vs ...any) Predicate { return &Cmp{Field: field, Op: OpIn, Set: vs} }

// Exists matches documents that have the field at all.
func Exists(field string) Predicate { return &Cmp{Field: field, Op: OpExists} }

// Prefix matches string fields with the given prefix.
func Prefix(field, p string) Predicate { return &Cmp{Field: field, Op: OpPrefix, Value: p} }

// Contains matches string fields containing the given substring.
func Contains(field, sub string) Predicate { return &Cmp{Field: field, Op: OpContains, Value: sub} }

// Match implements Predicate.
func (c *Cmp) Match(doc map[string]any) bool {
	got, ok := lookup(doc, c.Field)
	switch c.Op {
	case OpExists:
		return ok
	case OpEq:
		return ok && equal(got, c.Value)
	case OpNe:
		return !ok || !equal(got, c.Value)
	case OpIn:
		if !ok {
			return false
		}
		for _, v := range c.Set {
			if equal(got, v) {
				return true
			}
		}
		return false
	case OpGt, OpGte, OpLt, OpLte:
		if !ok {
			return false
		}
		cmp, comparable := compare(got, c.Value)
		if !comparable {
			return false
		}
		switch c.Op {
		case OpGt:
			return cmp > 0
		case OpGte:
			return cmp >= 0
		case OpLt:
			return cmp < 0
		default:
			return cmp <= 0
		}
	case OpPrefix:
		s, sok := got.(string)
		p, pok := c.Value.(string)
		return ok && sok && pok && strings.HasPrefix(s, p)
	case OpContains:
		s, sok := got.(string)
		p, pok := c.Value.(string)
		return ok && sok && pok && strings.Contains(s, p)
	}
	return false
}

// Canonical implements Predicate.
func (c *Cmp) Canonical() string {
	switch c.Op {
	case OpExists:
		return fmt.Sprintf("EXISTS(%s)", c.Field)
	case OpIn:
		vals := make([]string, len(c.Set))
		for i, v := range c.Set {
			vals[i] = formatValue(v)
		}
		sort.Strings(vals)
		return fmt.Sprintf("%s IN [%s]", c.Field, strings.Join(vals, ","))
	default:
		return fmt.Sprintf("%s %s %s", c.Field, c.Op, formatValue(c.Value))
	}
}

// Fields implements Predicate.
func (c *Cmp) Fields(dst map[string]struct{}) { dst[c.Field] = struct{}{} }

// And is the conjunction of its operands; empty And matches everything.
type And []Predicate

// Match implements Predicate.
func (a And) Match(doc map[string]any) bool {
	for _, p := range a {
		if !p.Match(doc) {
			return false
		}
	}
	return true
}

// Canonical implements Predicate.
func (a And) Canonical() string { return canonicalJunction("AND", a) }

// Fields implements Predicate.
func (a And) Fields(dst map[string]struct{}) {
	for _, p := range a {
		p.Fields(dst)
	}
}

// Or is the disjunction of its operands; empty Or matches nothing.
type Or []Predicate

// Match implements Predicate.
func (o Or) Match(doc map[string]any) bool {
	for _, p := range o {
		if p.Match(doc) {
			return true
		}
	}
	return false
}

// Canonical implements Predicate.
func (o Or) Canonical() string { return canonicalJunction("OR", o) }

// Fields implements Predicate.
func (o Or) Fields(dst map[string]struct{}) {
	for _, p := range o {
		p.Fields(dst)
	}
}

// Not negates its operand.
type Not struct{ P Predicate }

// Match implements Predicate.
func (n Not) Match(doc map[string]any) bool { return !n.P.Match(doc) }

// Canonical implements Predicate.
func (n Not) Canonical() string { return "NOT(" + n.P.Canonical() + ")" }

// Fields implements Predicate.
func (n Not) Fields(dst map[string]struct{}) { n.P.Fields(dst) }

// True matches every document. It is the predicate of an unfiltered scan.
type True struct{}

// Match implements Predicate.
func (True) Match(map[string]any) bool { return true }

// Canonical implements Predicate.
func (True) Canonical() string { return "TRUE" }

// Fields implements Predicate.
func (True) Fields(map[string]struct{}) {}

func canonicalJunction(op string, ps []Predicate) string {
	if len(ps) == 0 {
		if op == "AND" {
			return "TRUE"
		}
		return "FALSE"
	}
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = p.Canonical()
	}
	sort.Strings(parts)
	return op + "(" + strings.Join(parts, ";") + ")"
}

// lookup resolves a possibly dotted field path ("price" or "meta.tag").
func lookup(doc map[string]any, path string) (any, bool) {
	if doc == nil {
		return nil, false
	}
	if !strings.Contains(path, ".") {
		v, ok := doc[path]
		return v, ok
	}
	cur := any(doc)
	for _, part := range strings.Split(path, ".") {
		m, ok := cur.(map[string]any)
		if !ok {
			return nil, false
		}
		cur, ok = m[part]
		if !ok {
			return nil, false
		}
	}
	return cur, true
}

// equal compares two scalars with numeric coercion: all integer and float
// types compare by value, so a document's int 5 equals a query's float64 5.
func equal(a, b any) bool {
	if an, aok := toFloat(a); aok {
		if bn, bok := toFloat(b); bok {
			return an == bn
		}
		return false
	}
	switch av := a.(type) {
	case string:
		bv, ok := b.(string)
		return ok && av == bv
	case bool:
		bv, ok := b.(bool)
		return ok && av == bv
	case nil:
		return b == nil
	}
	return false
}

// compare orders two scalars; the bool result reports comparability.
func compare(a, b any) (int, bool) {
	if an, aok := toFloat(a); aok {
		bn, bok := toFloat(b)
		if !bok {
			return 0, false
		}
		switch {
		case an < bn:
			return -1, true
		case an > bn:
			return 1, true
		default:
			return 0, true
		}
	}
	as, aok := a.(string)
	bs, bok := b.(string)
	if aok && bok {
		return strings.Compare(as, bs), true
	}
	return 0, false
}

func toFloat(v any) (float64, bool) {
	switch n := v.(type) {
	case int:
		return float64(n), true
	case int8:
		return float64(n), true
	case int16:
		return float64(n), true
	case int32:
		return float64(n), true
	case int64:
		return float64(n), true
	case uint:
		return float64(n), true
	case uint8:
		return float64(n), true
	case uint16:
		return float64(n), true
	case uint32:
		return float64(n), true
	case uint64:
		return float64(n), true
	case float32:
		return float64(n), true
	case float64:
		return n, true
	}
	return 0, false
}

func formatValue(v any) string {
	switch n := v.(type) {
	case string:
		return strconv.Quote(n)
	case nil:
		return "null"
	case bool:
		return strconv.FormatBool(n)
	default:
		if f, ok := toFloat(v); ok {
			return strconv.FormatFloat(f, 'g', -1, 64)
		}
		return fmt.Sprintf("%v", v)
	}
}
