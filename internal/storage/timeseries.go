package storage

import (
	"sort"
	"sync"
	"time"

	"speedkit/internal/clock"
)

// Point is one time-series sample.
type Point struct {
	Time  time.Time
	Value float64
}

// TimeSeries is an append-mostly store of named series, the analytics
// substrate behind the TTL estimator: per-resource read and write events
// are recorded as points and the estimator queries rates over trailing
// windows. Points may arrive slightly out of order (bounded reordering is
// tolerated by sorting lazily on read), matching how a real ingest
// pipeline behaves.
type TimeSeries struct {
	mu     sync.RWMutex
	series map[string]*seriesData
	clk    clock.Clock
	// Retention bounds memory: points older than Retention relative to the
	// newest point in a series are dropped during compaction. Zero disables
	// retention.
	Retention time.Duration
}

type seriesData struct {
	points []Point
	sorted bool
}

// NewTimeSeries creates a store using clk (nil means system clock).
func NewTimeSeries(clk clock.Clock) *TimeSeries {
	if clk == nil {
		clk = clock.System
	}
	return &TimeSeries{series: make(map[string]*seriesData), clk: clk}
}

// Append records value at the current clock time.
func (ts *TimeSeries) Append(name string, value float64) {
	ts.AppendAt(name, ts.clk.Now(), value)
}

// AppendAt records value at an explicit time.
func (ts *TimeSeries) AppendAt(name string, t time.Time, value float64) {
	ts.mu.Lock()
	s, ok := ts.series[name]
	if !ok {
		s = &seriesData{sorted: true}
		ts.series[name] = s
	}
	if n := len(s.points); n > 0 && t.Before(s.points[n-1].Time) {
		s.sorted = false
	}
	s.points = append(s.points, Point{Time: t, Value: value})
	ts.mu.Unlock()
}

// ensureSorted sorts and compacts a series in place. Callers hold ts.mu.
func (ts *TimeSeries) ensureSorted(s *seriesData) {
	if !s.sorted {
		sort.Slice(s.points, func(i, j int) bool {
			return s.points[i].Time.Before(s.points[j].Time)
		})
		s.sorted = true
	}
	if ts.Retention > 0 && len(s.points) > 0 {
		cutoff := s.points[len(s.points)-1].Time.Add(-ts.Retention)
		i := sort.Search(len(s.points), func(i int) bool {
			return !s.points[i].Time.Before(cutoff)
		})
		if i > 0 {
			s.points = append(s.points[:0], s.points[i:]...)
		}
	}
}

// Range returns a copy of the points in [from, to], sorted by time.
func (ts *TimeSeries) Range(name string, from, to time.Time) []Point {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	s, ok := ts.series[name]
	if !ok {
		return nil
	}
	ts.ensureSorted(s)
	lo := sort.Search(len(s.points), func(i int) bool { return !s.points[i].Time.Before(from) })
	hi := sort.Search(len(s.points), func(i int) bool { return s.points[i].Time.After(to) })
	if lo >= hi {
		return nil
	}
	out := make([]Point, hi-lo)
	copy(out, s.points[lo:hi])
	return out
}

// CountSince returns how many points in the series fall in the trailing
// window [now-window, now]. This is the estimator's rate primitive.
func (ts *TimeSeries) CountSince(name string, window time.Duration) int {
	now := ts.clk.Now()
	return len(ts.Range(name, now.Add(-window), now))
}

// RatePerSecond returns the event rate over the trailing window.
func (ts *TimeSeries) RatePerSecond(name string, window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return float64(ts.CountSince(name, window)) / window.Seconds()
}

// Last returns the most recent point and whether the series is nonempty.
func (ts *TimeSeries) Last(name string) (Point, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	s, ok := ts.series[name]
	if !ok || len(s.points) == 0 {
		return Point{}, false
	}
	ts.ensureSorted(s)
	return s.points[len(s.points)-1], true
}

// Downsample buckets the series into fixed-width windows over [from, to]
// and returns one averaged point per non-empty bucket, stamped at the
// bucket start.
func (ts *TimeSeries) Downsample(name string, from, to time.Time, width time.Duration) []Point {
	if width <= 0 {
		return nil
	}
	pts := ts.Range(name, from, to)
	if len(pts) == 0 {
		return nil
	}
	out := make([]Point, 0, 16)
	bucketStart := from
	var sum float64
	var n int
	flush := func() {
		if n > 0 {
			out = append(out, Point{Time: bucketStart, Value: sum / float64(n)})
		}
		sum, n = 0, 0
	}
	for _, p := range pts {
		for p.Time.Sub(bucketStart) >= width {
			flush()
			bucketStart = bucketStart.Add(width)
		}
		sum += p.Value
		n++
	}
	flush()
	return out
}

// Series lists the stored series names, sorted.
func (ts *TimeSeries) Series() []string {
	ts.mu.RLock()
	out := make([]string, 0, len(ts.series))
	for name := range ts.series {
		out = append(out, name)
	}
	ts.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Len returns the number of points currently stored in the named series.
func (ts *TimeSeries) Len(name string) int {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	s, ok := ts.series[name]
	if !ok {
		return 0
	}
	return len(s.points)
}
