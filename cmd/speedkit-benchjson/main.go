// Command speedkit-benchjson converts `go test -bench` text output into
// a stable JSON artifact so that hot-path performance can be tracked in
// version control (BENCH_hotpath.json) and diffed across PRs.
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkParallel' -benchmem . | \
//	    go run ./cmd/speedkit-benchjson -out BENCH_hotpath.json \
//	    -baseline 'BenchmarkParallelCacheGet=126.4'
//
// The tool is a pure text transformer: stdlib only, no clock reads, no
// network. Baselines are passed explicitly by the caller (typically the
// Makefile, which documents where its numbers were measured) so that the
// recorded speedups are reproducible rather than baked into the tool.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// benchResult is one parsed benchmark line.
type benchResult struct {
	// Name is the benchmark name without the -P GOMAXPROCS suffix.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS the benchmark ran at (0 if unsuffixed).
	Procs int `json:"procs,omitempty"`
	// Iterations is b.N for the final run.
	Iterations uint64 `json:"iterations"`
	// NsPerOp is the headline latency.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp / AllocsPerOp come from -benchmem; nil when absent.
	BytesPerOp  *uint64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *uint64 `json:"allocs_per_op,omitempty"`
	// BaselineNsPerOp and Speedup are filled when a -baseline entry
	// matches Name.
	BaselineNsPerOp float64 `json:"baseline_ns_per_op,omitempty"`
	Speedup         float64 `json:"speedup_vs_baseline,omitempty"`
}

// report is the emitted document.
type report struct {
	// Note describes the provenance of the baseline numbers.
	Note string `json:"note,omitempty"`
	// Goos/Goarch/CPU/Pkg echo the context lines go test prints.
	Goos       string        `json:"goos,omitempty"`
	Goarch     string        `json:"goarch,omitempty"`
	CPU        string        `json:"cpu,omitempty"`
	Pkg        string        `json:"pkg,omitempty"`
	Benchmarks []benchResult `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	baseline := flag.String("baseline", "", "comma-separated Name=ns_per_op baseline pairs")
	note := flag.String("note", "", "free-form provenance note stored in the artifact")
	flag.Parse()

	baselines, err := parseBaselines(*baseline)
	if err != nil {
		fatalf("bad -baseline: %v", err)
	}
	rep, err := parse(os.Stdin, baselines)
	if err != nil {
		fatalf("parse: %v", err)
	}
	rep.Note = *note
	if len(rep.Benchmarks) == 0 {
		fatalf("no benchmark lines found on stdin")
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("marshal: %v", err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatalf("write %s: %v", *out, err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "speedkit-benchjson: "+format+"\n", args...)
	os.Exit(1)
}

// parseBaselines reads "Name=ns,Name=ns" into a lookup map.
func parseBaselines(s string) (map[string]float64, error) {
	m := map[string]float64{}
	if s == "" {
		return m, nil
	}
	for _, pair := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, fmt.Errorf("entry %q is not Name=ns_per_op", pair)
		}
		ns, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("entry %q: %v", pair, err)
		}
		m[name] = ns
	}
	return m, nil
}

// parse consumes go test -bench output and extracts context plus results.
func parse(r io.Reader, baselines map[string]float64) (report, error) {
	var rep report
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			if base, has := baselines[res.Name]; has && res.NsPerOp > 0 {
				res.BaselineNsPerOp = base
				res.Speedup = base / res.NsPerOp
			}
			rep.Benchmarks = append(rep.Benchmarks, res)
		}
	}
	return rep, sc.Err()
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkParallelCacheGet-4  35077526  35.50 ns/op  0 B/op  0 allocs/op
func parseBenchLine(line string) (benchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return benchResult{}, false
	}
	var res benchResult
	res.Name = fields[0]
	if name, procs, ok := strings.Cut(fields[0], "-"); ok {
		if p, err := strconv.Atoi(procs); err == nil {
			res.Name, res.Procs = name, p
		}
	}
	iter, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return benchResult{}, false
	}
	res.Iterations = iter
	// Remaining fields are value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			if v, err := strconv.ParseFloat(val, 64); err == nil {
				res.NsPerOp = v
			}
		case "B/op":
			if v, err := strconv.ParseUint(val, 10, 64); err == nil {
				res.BytesPerOp = &v
			}
		case "allocs/op":
			if v, err := strconv.ParseUint(val, 10, 64); err == nil {
				res.AllocsPerOp = &v
			}
		}
	}
	return res, res.NsPerOp > 0
}
