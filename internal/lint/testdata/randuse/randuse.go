// Package randuse seeds randdiscipline violations for the analyzer's
// fixture test.
package randuse

import "math/rand"

// Global draws from the shared global source.
func Global() int {
	return rand.Intn(10) // want "math/rand\\.Intn"
}

// GlobalFloat draws a float from the global source.
func GlobalFloat() float64 {
	return rand.Float64() // want "math/rand\\.Float64"
}

// Injected draws from an injected seeded source: no finding.
func Injected(rng *rand.Rand) int {
	return rng.Intn(10)
}

// Construct builds a seeded source; constructors are the fix, not the
// offense: no finding.
func Construct(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
