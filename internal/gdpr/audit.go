package gdpr

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Boundary names a trust boundary that data can cross.
type Boundary string

// Trust boundaries in the Speed Kit deployment model.
const (
	// BoundaryDevice is the user's own device — PII here is fine by
	// construction.
	BoundaryDevice Boundary = "device"
	// BoundaryCDN is shared multi-tenant caching infrastructure. PII must
	// never cross it; this is the boundary regional data-protection law
	// constrains.
	BoundaryCDN Boundary = "cdn"
	// BoundaryOrigin is the first-party service the user has a direct
	// relationship with; PII may cross under the service contract.
	BoundaryOrigin Boundary = "origin"
)

// Auditor records which fields crossed which boundary, tallied by
// sensitivity. It is the measurement instrument for the compliance
// experiment. Safe for concurrent use.
type Auditor struct {
	mu    sync.Mutex
	flows map[Boundary]*flowTally // guarded by mu
}

type flowTally struct {
	requests     uint64
	withPII      uint64
	byField      map[string]uint64 // PII field -> occurrences
	anonymous    uint64
	pseudonymous uint64
	pii          uint64
}

// NewAuditor creates an empty auditor.
func NewAuditor() *Auditor {
	return &Auditor{flows: make(map[Boundary]*flowTally)}
}

// RecordFlow notes one request crossing boundary carrying the named
// fields. Returns the subset of fields classified PII (sorted), which is
// also what a runtime enforcement hook would block.
func (a *Auditor) RecordFlow(b Boundary, fields []string) (piiFields []string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	t, ok := a.flows[b]
	if !ok {
		t = &flowTally{byField: make(map[string]uint64)}
		a.flows[b] = t
	}
	t.requests++
	for _, f := range fields {
		switch Classify(f) {
		case PII:
			t.pii++
			t.byField[strings.ToLower(f)]++
			piiFields = append(piiFields, f)
		case Pseudonymous:
			t.pseudonymous++
		default:
			t.anonymous++
		}
	}
	if len(piiFields) > 0 {
		t.withPII++
	}
	sort.Strings(piiFields)
	return piiFields
}

// BoundaryReport summarizes one boundary's flows.
type BoundaryReport struct {
	Boundary          Boundary
	Requests          uint64
	RequestsWithPII   uint64
	PIIFieldCount     uint64
	PseudonymousCount uint64
	AnonymousCount    uint64
	// TopPIIFields lists the leaked PII fields by frequency, most first.
	TopPIIFields []string
}

// Report summarizes the named boundary.
func (a *Auditor) Report(b Boundary) BoundaryReport {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := BoundaryReport{Boundary: b}
	t, ok := a.flows[b]
	if !ok {
		return r
	}
	r.Requests = t.requests
	r.RequestsWithPII = t.withPII
	r.PIIFieldCount = t.pii
	r.PseudonymousCount = t.pseudonymous
	r.AnonymousCount = t.anonymous
	type fc struct {
		f string
		c uint64
	}
	fields := make([]fc, 0, len(t.byField))
	for f, c := range t.byField {
		fields = append(fields, fc{f, c})
	}
	sort.Slice(fields, func(i, j int) bool {
		if fields[i].c != fields[j].c {
			return fields[i].c > fields[j].c
		}
		return fields[i].f < fields[j].f
	})
	for _, f := range fields {
		r.TopPIIFields = append(r.TopPIIFields, f.f)
	}
	return r
}

// Compliant reports whether the CDN boundary saw zero PII — the
// property the Speed Kit architecture guarantees by construction.
func (a *Auditor) Compliant() bool {
	return a.Report(BoundaryCDN).PIIFieldCount == 0
}

// String renders a multi-boundary summary for logs and the bench harness.
func (a *Auditor) String() string {
	var b strings.Builder
	for _, bd := range []Boundary{BoundaryDevice, BoundaryCDN, BoundaryOrigin} {
		r := a.Report(bd)
		fmt.Fprintf(&b, "%-7s requests=%-8d withPII=%-8d piiFields=%-8d\n",
			bd, r.Requests, r.RequestsWithPII, r.PIIFieldCount)
	}
	return b.String()
}
