package lint

import (
	"strings"
)

// Suppression directives let a human overrule an analyzer at one spot,
// with an auditable reason:
//
//	//lint:ignore piiflow key is a content hash, not an identifier
//	wal.Append(frame)
//
// The directive suppresses findings of the named analyzer on its own
// line and on the line directly below it (so it works both as a trailing
// comment and as a comment above the offending statement). A reason is
// mandatory: a directive without one does not suppress anything — the
// fail-closed direction — so a bare "//lint:ignore piiflow" leaves the
// finding visible rather than silently widening the hole.

// suppressKey identifies one (file, line, analyzer) suppression slot.
type suppressKey struct {
	file     string
	line     int
	analyzer string
}

// collectSuppressions parses every "//lint:ignore" directive in the
// packages and returns the set of suppressed slots.
func collectSuppressions(pkgs []*Package) map[suppressKey]bool {
	out := map[suppressKey]bool{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					rest, ok := strings.CutPrefix(strings.TrimSpace(text), "lint:ignore")
					if !ok {
						continue
					}
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						// No analyzer or no reason: the directive is
						// inert, not a wildcard.
						continue
					}
					analyzer := fields[0]
					pos := pkg.Fset.Position(c.Pos())
					out[suppressKey{pos.Filename, pos.Line, analyzer}] = true
					out[suppressKey{pos.Filename, pos.Line + 1, analyzer}] = true
				}
			}
		}
	}
	return out
}

// filterSuppressed drops diagnostics covered by an ignore directive.
func filterSuppressed(pkgs []*Package, diags []Diagnostic) []Diagnostic {
	if len(diags) == 0 {
		return diags
	}
	sup := collectSuppressions(pkgs)
	if len(sup) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		if sup[suppressKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
