package httpapi_test

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"speedkit/internal/clock"
	"speedkit/internal/core"
	"speedkit/internal/httpapi"
	"speedkit/internal/httpclient"
	"speedkit/internal/netsim"
	"speedkit/internal/obs"
	"speedkit/internal/proxy"
	"speedkit/internal/session"
	"speedkit/internal/tracectx"
)

// stitchEpoch anchors both simulated clocks so trace timestamps replay
// byte-identically across twin runs.
var stitchEpoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// stitchResult is one device↔server round: the device's root traces,
// the server traces they stitched to, and the normalized export.
type stitchResult struct {
	page     *obs.Trace
	write    *obs.Trace
	srvPage  []*obs.Trace
	srvWrite []*obs.Trace
	export   []byte
}

// runStitchRound runs a real two-process exchange: a server process
// (its own tracer domain, seed 2) behind an httptest listener, and a
// device proxy (seed 1) whose only connection to it is the HTTP wire.
// One page load and one traceparent-carrying write cross that wire.
func runStitchRound(t *testing.T) stitchResult {
	t.Helper()

	srvClk := clock.NewSimulated(stitchEpoch)
	svc, err := core.NewStorefront(core.StorefrontConfig{
		Config: core.Config{
			Clock: srvClk, Seed: 1, Delta: 30 * time.Second,
			Obs:    obs.NewRegistry(),
			Tracer: obs.NewTracerSeeded(srvClk, 1, 64, 2),
		},
		Products: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(httpapi.New(svc, session.Population(1, 5)).Handler())
	t.Cleanup(ts.Close)

	devClk := clock.NewSimulated(stitchEpoch)
	devTracer := obs.NewTracerSeeded(devClk, 1, 16, 1)
	dev := proxy.New(proxy.Config{
		Region: netsim.EU,
		Delta:  30 * time.Second,
		Clock:  devClk,
		Tracer: devTracer,
	}, httpclient.New(ts.URL, nil))

	if _, err := dev.Load(context.Background(), "/product/p00042"); err != nil {
		t.Fatalf("page load over HTTP: %v", err)
	}
	pages := devTracer.Recent(1)
	if len(pages) != 1 {
		t.Fatalf("device tracer sampled %d traces, want 1", len(pages))
	}

	wtr := devTracer.Start("admin.write", "/product/p00042")
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/admin/write?product=p00042&price=19.99", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(tracectx.Header, wtr.SpanContext().Traceparent())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("write over HTTP: status %d", resp.StatusCode)
	}
	devTracer.Finish(wtr)

	res := stitchResult{page: pages[0], write: wtr}
	// The server finishes its traces just before the response bytes are
	// read back on this side; give the handler goroutine a bounded beat.
	for wait := 0; wait < 400; wait++ {
		res.srvPage = svc.Tracer().ByTraceID(res.page.TraceID)
		res.srvWrite = svc.Tracer().ByTraceID(res.write.TraceID)
		if len(res.srvPage) >= 2 && len(res.srvWrite) >= 3 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	all := append([]*obs.Trace{res.page}, res.srvPage...)
	all = append(all, res.write)
	all = append(all, res.srvWrite...)
	res.export, err = obs.ExportTraces(normalizeWallClock(all))
	if err != nil {
		t.Fatalf("ExportTraces: %v", err)
	}
	return res
}

// normalizeWallClock deep-copies traces with the wall-clock-measured
// costs zeroed — loopback TCP latency is the only nondeterminism in the
// exchange; identity, parentage, structure, events, and the simulated
// timestamps must replay byte-exactly.
func normalizeWallClock(in []*obs.Trace) []*obs.Trace {
	out := make([]*obs.Trace, len(in))
	for i, tr := range in {
		c := *tr
		c.Total = 0
		c.BlockLatency = 0
		c.SketchAge = 0
		c.DeltaBudget = 0
		c.Spans = append([]obs.Span(nil), tr.Spans...)
		for j := range c.Spans {
			c.Spans[j].Duration = 0
		}
		c.Events = append([]obs.Event(nil), tr.Events...)
		out[i] = &c
	}
	return out
}

// TestCrossProcessStitching is the acceptance check for the tracing
// tentpole: a device page load and a write each produce ONE stitched
// trace whose spans live in two processes joined only by a real HTTP
// hop, with correct causal parentage down to the invalidation pipeline,
// and the whole exchange exports byte-deterministically.
func TestCrossProcessStitching(t *testing.T) {
	res := runStitchRound(t)

	if res.page.TraceID.IsZero() || res.write.TraceID.IsZero() {
		t.Fatalf("device roots drew zero trace IDs")
	}
	if res.page.TraceID == res.write.TraceID {
		t.Fatalf("page load and write share trace ID %s", res.page.TraceID)
	}

	// The page load crossed the wire twice (sketch bootstrap + shell
	// fetch); both server traces must have adopted the device identity.
	kinds := map[string]*obs.Trace{}
	for _, tr := range res.srvPage {
		kinds[tr.Kind] = tr
	}
	for _, want := range []string{"http.sketch", "http.page"} {
		tr := kinds[want]
		if tr == nil {
			t.Fatalf("server recorded no %s trace on the page-load ID; got %d traces", want, len(res.srvPage))
		}
		if !tr.Remote {
			t.Errorf("%s trace not marked Remote", want)
		}
		if tr.TraceID != res.page.TraceID {
			t.Errorf("%s adopted trace ID %s, want %s", want, tr.TraceID, res.page.TraceID)
		}
		if tr.ParentSpanID != res.page.SpanID {
			t.Errorf("%s parent span = %s, want device page span %s", want, tr.ParentSpanID, res.page.SpanID)
		}
		if tr.SpanID == res.page.SpanID || tr.SpanID.IsZero() {
			t.Errorf("%s drew span ID %s — must be its own, non-zero", want, tr.SpanID)
		}
	}

	// The write chains one hop deeper: device admin.write → server
	// http.write → the invalidation-pipeline runs the patch triggered.
	var writeTr *obs.Trace
	invalidations := 0
	for _, tr := range res.srvWrite {
		if tr.Kind == "http.write" {
			writeTr = tr
		}
	}
	if writeTr == nil {
		t.Fatalf("server recorded no http.write trace; got %d traces", len(res.srvWrite))
	}
	if !writeTr.Remote || writeTr.ParentSpanID != res.write.SpanID {
		t.Errorf("http.write parent span = %s remote=%v, want device span %s remote=true",
			writeTr.ParentSpanID, writeTr.Remote, res.write.SpanID)
	}
	for _, tr := range res.srvWrite {
		if tr.Kind != "invalidation" {
			continue
		}
		invalidations++
		if tr.TraceID != res.write.TraceID {
			t.Errorf("invalidation trace ID = %s, want write's %s", tr.TraceID, res.write.TraceID)
		}
		if tr.ParentSpanID != writeTr.SpanID {
			t.Errorf("invalidation parent span = %s, want http.write span %s", tr.ParentSpanID, writeTr.SpanID)
		}
	}
	if invalidations == 0 {
		t.Errorf("write produced no invalidation traces on its trace ID")
	}

	// Byte-deterministic golden export: an identical second round — new
	// server, new device, same seeds — must export the same bytes.
	twin := runStitchRound(t)
	if !bytes.Equal(res.export, twin.export) {
		t.Errorf("twin stitching rounds exported different bytes (%d vs %d):\n--- first ---\n%s\n--- twin ---\n%s",
			len(res.export), len(twin.export), res.export, twin.export)
	}
}
