// Command speedkit-server runs the Speed Kit service side over real HTTP:
// the origin, CDN-path page delivery (with ETag-based conditional
// revalidation), the sketch endpoint clients poll every Δ, and the
// first-party blocks API. It is the deployable surface of the
// reproduction — a service worker (or the curl commands below) plays the
// client role.
//
//	speedkit-server -addr :8080 -products 1000
//
//	curl localhost:8080/page?path=/product/p00042      # anonymous shell
//	curl localhost:8080/page?path=/product/p00042 -H 'If-None-Match: "v1"'
//	curl localhost:8080/sketch -o sketch.bin           # Δ-refreshed sketch
//	curl 'localhost:8080/blocks?names=cart,greeting&user=u000001'
//	curl -X POST 'localhost:8080/admin/write?product=p00042&price=9.99'
//	curl localhost:8080/stats
//
// Observability surface:
//
//	curl localhost:8080/healthz                        # liveness + deployment shape (JSON)
//	curl localhost:8080/metrics                        # Prometheus-style text exposition
//	curl 'localhost:8080/debug/traces?n=10'            # recent sampled request traces (JSON)
//	go tool pprof localhost:8080/debug/pprof/profile   # CPU profile (pprof is mounted)
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"speedkit"
	"speedkit/internal/clock"
	"speedkit/internal/core"
	"speedkit/internal/durable"
	"speedkit/internal/httpapi"
	"speedkit/internal/obs"
	"speedkit/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	products := flag.Int("products", 1000, "catalog size")
	delta := flag.Duration("delta", 60*time.Second, "staleness bound Δ")
	warm := flag.Bool("warm", false, "pre-fill every edge with the home and category pages")
	traceSample := flag.Int("trace-sample", 1, "trace 1 in N requests (0 disables tracing)")
	traceRing := flag.Int("trace-ring", 256, "how many recent traces /debug/traces retains")
	dataDir := flag.String("data-dir", "", "durability directory (empty = memory-only); coherence state is journaled there and recovered at startup")
	flag.Parse()

	var store *durable.Store
	if *dataDir != "" {
		store = durable.New(durable.Config{
			Dir:        *dataDir,
			Clock:      clock.System,
			ColdWindow: *delta,
			// A lost cache-fill report can hide a stale copy for up to the
			// TTL it was issued with; the adaptive estimator caps at 24h.
			BlindHorizon: 24 * time.Hour,
		})
	}

	svc, err := core.NewStorefront(core.StorefrontConfig{
		Config: core.Config{
			Clock:   clock.System, // real time for a real server
			Delta:   *delta,
			Tracer:  obs.NewTracer(clock.System, *traceSample, *traceRing),
			Durable: store,
		},
		Products: *products,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	if store != nil {
		info, rerr := svc.Recovery()
		if rerr != nil {
			log.Fatalf("durability recovery: %v", rerr)
		}
		log.Printf("durability: dir=%s recovered mode=%s replayed=%d saturated=%v watermark=%d",
			*dataDir, info.Mode, info.Replayed, info.Saturated, info.Watermark)
	}

	if *warm {
		paths := []string{"/"}
		for _, cat := range workload.Categories {
			paths = append(paths, workload.CategoryPath(cat))
		}
		warmed, skipped, err := svc.Warm(paths)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("warmed %d paths (%d skipped)", warmed, len(skipped))
	}

	api := httpapi.New(svc, speedkit.NewUsers(1, 100))
	log.Printf("speedkit-server listening on %s (%d products, Δ=%v)", *addr, *products, *delta)

	srv := &http.Server{Addr: *addr, Handler: api.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	// SIGTERM/SIGINT: stop serving, then seal the durability log with the
	// clean-shutdown marker so the next start recovers warm instead of
	// engaging the conservative cold start.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		log.Fatal(err)
	case sig := <-sigCh:
		log.Printf("%s: draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = srv.Shutdown(ctx)
		cancel()
		if store != nil {
			if err := store.Close(); err != nil {
				log.Fatalf("durability flush: %v", err)
			}
			log.Printf("durability: log sealed clean")
		}
	}
}
