package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"speedkit/internal/bloom"
	"speedkit/internal/clock"
	"speedkit/internal/core"
	"speedkit/internal/invalidb"
	"speedkit/internal/metrics"
	"speedkit/internal/proxy"
	"speedkit/internal/query"
	"speedkit/internal/session"
	"speedkit/internal/storage"
	"speedkit/internal/workload"
)

// --- Figure 6: sketch size vs tracked entries --------------------------------

// Figure6Point sizes the client sketch for one population of stale
// entries.
type Figure6Point struct {
	Entries     int
	SketchBytes int
	MeasuredFPR float64
	BitsPerKey  float64
}

// Figure6Result is the sizing series.
type Figure6Result struct {
	TargetFPR float64
	Points    []Figure6Point
}

// RunFigure6 reproduces Figure 6: wire size and realized false-positive
// rate of the client sketch as the number of simultaneously stale-tracked
// resources grows.
func RunFigure6(scale Scale) *Figure6Result {
	const target = 0.05
	out := &Figure6Result{TargetFPR: target}
	sizes := []int{1000, 10000, 100000, 1000000}
	if scale < 1 {
		sizes = []int{1000, 10000, 100000}
	}
	for _, n := range sizes {
		f := bloom.NewFilterForCapacity(uint64(n), target)
		for i := 0; i < n; i++ {
			f.Add(fmt.Sprintf("/product/p%07d", i))
		}
		fp := 0
		probes := 20000
		for i := 0; i < probes; i++ {
			if f.Contains(fmt.Sprintf("/other/o%07d", i)) {
				fp++
			}
		}
		out.Points = append(out.Points, Figure6Point{
			Entries:     n,
			SketchBytes: f.SizeBytes() + 13,
			MeasuredFPR: float64(fp) / float64(probes),
			BitsPerKey:  float64(f.Bits()) / float64(n),
		})
	}
	return out
}

// String renders the series.
func (f *Figure6Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6 — sketch size (target FPR %.0f%%)\n", f.TargetFPR*100)
	fmt.Fprintf(&b, "%10s %14s %12s %12s\n", "entries", "bytes on wire", "FPR", "bits/key")
	for _, p := range f.Points {
		fmt.Fprintf(&b, "%10d %14d %11.2f%% %12.2f\n",
			p.Entries, p.SketchBytes, p.MeasuredFPR*100, p.BitsPerKey)
	}
	return b.String()
}

// --- Figure 8: invalidation pipeline throughput --------------------------------

// Figure8Point is one registered-query count's performance.
type Figure8Point struct {
	Queries     int
	EventsPerS  float64
	MeanLatency time.Duration
}

// Figure8Result is the matcher scaling series. Unlike the simulation
// experiments this one measures real wall-clock performance of the
// matching engine.
type Figure8Result struct {
	Events int
	Points []Figure8Point
}

// RunFigure8 reproduces Figure 8: invalidation-engine throughput and
// per-event matching latency as the number of registered continuous
// queries grows.
func RunFigure8(scale Scale) *Figure8Result {
	events := Scale(scale).ops(5000)
	out := &Figure8Result{Events: events}
	counts := []int{10, 100, 1000, 10000}
	if scale < 1 {
		counts = []int{10, 100, 1000}
	}
	for _, nq := range counts {
		eng := invalidb.New(invalidb.Config{Shards: 8})
		for i := 0; i < nq; i++ {
			eng.Register(fmt.Sprintf("/q/%d", i),
				query.MustParse(fmt.Sprintf(`products WHERE category = %q AND price < %d`,
					workload.Categories[i%len(workload.Categories)], 50+i%150)))
		}
		ev := storage.ChangeEvent{
			Collection: "products", ID: "p1", Kind: storage.ChangeUpdate,
			Before: map[string]any{"category": "shoes", "price": 40.0},
			After:  map[string]any{"category": "shoes", "price": 60.0},
		}
		sw := clock.NewStopwatch(clock.System)
		for i := 0; i < events; i++ {
			eng.Process(ev)
		}
		elapsed := sw.Elapsed()
		out.Points = append(out.Points, Figure8Point{
			Queries:     nq,
			EventsPerS:  float64(events) / elapsed.Seconds(),
			MeanLatency: elapsed / time.Duration(events),
		})
	}
	return out
}

// String renders the series.
func (f *Figure8Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8 — invalidation matcher scaling (%d events each)\n", f.Events)
	fmt.Fprintf(&b, "%10s %14s %16s\n", "queries", "events/s", "latency/event")
	for _, p := range f.Points {
		fmt.Fprintf(&b, "%10d %14.0f %16s\n", p.Queries, p.EventsPerS, p.MeanLatency)
	}
	return b.String()
}

// --- Ablation A1: dynamic blocks -----------------------------------------------

// AblationA1Row compares one personalization strategy.
type AblationA1Row struct {
	Strategy string
	P50ms    float64
	P90ms    float64
	HitRatio float64
}

// AblationA1Result is the dynamic-blocks ablation.
type AblationA1Result struct{ Rows []AblationA1Row }

// RunAblationA1 reproduces Ablation A1: what the anonymous-shell +
// on-device-blocks design buys over rendering personalized pages at the
// origin. Three strategies over identical traffic:
//
//	shell+device-blocks — the Speed Kit design
//	shell+origin-blocks — cacheable shell, but fragments fetched from the
//	                      origin's first-party API each load
//	full-origin-render  — the legacy personalizing CDN
func RunAblationA1(seed int64, scale Scale) (*AblationA1Result, error) {
	out := &AblationA1Result{}
	ops := scale.ops(15000)

	// Strategy 1: standard Speed Kit.
	r1, err := RunField(FieldConfig{Mode: ModeSpeedKit, Seed: seed, Ops: ops})
	if err != nil {
		return nil, err
	}
	qs := r1.Latency.Quantiles(0.5, 0.9)
	out.Rows = append(out.Rows, AblationA1Row{
		Strategy: "shell+device-blocks",
		P50ms:    qs[0] / 1000, P90ms: qs[1] / 1000, HitRatio: r1.HitRatio(),
	})

	// Strategy 2: shell cached, blocks fetched from the origin. Built by
	// hand: same storefront, but devices configured with OriginBlocks.
	r2, err := runOriginBlocksArm(seed, ops)
	if err != nil {
		return nil, err
	}
	qs = r2.Latency.Quantiles(0.5, 0.9)
	out.Rows = append(out.Rows, AblationA1Row{
		Strategy: "shell+origin-blocks",
		P50ms:    qs[0] / 1000, P90ms: qs[1] / 1000, HitRatio: r2.HitRatio(),
	})

	// Strategy 3: the legacy full-page render.
	r3, err := RunField(FieldConfig{Mode: ModeLegacy, Seed: seed, Ops: ops})
	if err != nil {
		return nil, err
	}
	qs = r3.Latency.Quantiles(0.5, 0.9)
	out.Rows = append(out.Rows, AblationA1Row{
		Strategy: "full-origin-render",
		P50ms:    qs[0] / 1000, P90ms: qs[1] / 1000, HitRatio: r3.HitRatio(),
	})
	return out, nil
}

// runOriginBlocksArm is RunField's Speed Kit flow with every dynamic
// block forced over the first-party origin channel.
func runOriginBlocksArm(seed int64, ops int) (*FieldResult, error) {
	clk := clock.NewSimulated(time.Time{})
	svc, err := core.NewStorefront(core.StorefrontConfig{
		Config:   core.Config{Clock: clk, Seed: seed},
		Products: 500,
	})
	if err != nil {
		return nil, err
	}
	defer svc.Close()

	users := session.Population(seed, 90)
	devices := make([]*proxy.Proxy, len(users))
	for i, u := range users {
		devices[i] = newProxyWithBlocks(svc, u)
	}
	gen := workload.NewGenerator(workload.Config{Seed: seed + 100, Products: 500, Users: 90})

	res := &FieldResult{
		Mode:       ModeSpeedKit,
		Latency:    metrics.NewHistogram(),
		TierCounts: map[proxy.Source]uint64{},
	}
	for i := 0; i < ops; i++ {
		op := gen.Next()
		clk.Advance(op.Gap)
		switch op.Kind {
		case workload.ViewHome, workload.ViewCategory, workload.ViewProduct:
			pl, err := devices[op.UserIdx].Load(context.Background(), op.Path)
			if err != nil {
				return nil, err
			}
			res.Loads++
			res.TierCounts[pl.Source]++
			res.Latency.Observe(float64(pl.Latency.Microseconds()))
		case workload.AddToCart:
			users[op.UserIdx].AddToCart(op.ProductID, 1)
		}
	}
	return res, nil
}

// String renders the ablation.
func (a *AblationA1Result) String() string {
	var b strings.Builder
	b.WriteString("Ablation A1 — dynamic-block strategies\n")
	fmt.Fprintf(&b, "%-22s %10s %10s %10s\n", "strategy", "p50 [ms]", "p90 [ms]", "hit ratio")
	for _, r := range a.Rows {
		fmt.Fprintf(&b, "%-22s %10.1f %10.1f %9.1f%%\n", r.Strategy, r.P50ms, r.P90ms, r.HitRatio*100)
	}
	return b.String()
}

// --- Ablation A2: Bloom maintenance strategies -----------------------------------

// AblationA2Row is one maintenance strategy's cost.
type AblationA2Row struct {
	Strategy string
	NsPerOp  float64
	Bytes    int
}

// AblationA2Result compares counting-filter maintenance against periodic
// rebuilds of a plain filter.
type AblationA2Result struct {
	Churn int
	Rows  []AblationA2Row
}

// RunAblationA2 reproduces Ablation A2: the cost of keeping the server
// sketch exact. The counting filter supports O(1) removals; the plain
// filter must be rebuilt from the live key set whenever anything expires.
func RunAblationA2(scale Scale) *AblationA2Result {
	churn := Scale(scale).ops(200000)
	out := &AblationA2Result{Churn: churn}
	const live = 10000

	keys := make([]string, live)
	for i := range keys {
		keys[i] = fmt.Sprintf("/r/%d", i)
	}

	// Strategy 1: counting filter, add+remove per churn op.
	cf := bloom.NewCountingForCapacity(live, 0.05)
	for _, k := range keys {
		cf.Add(k)
	}
	sw := clock.NewStopwatch(clock.System)
	for i := 0; i < churn; i++ {
		k := keys[i%live]
		cf.Remove(k)
		cf.Add(k)
	}
	out.Rows = append(out.Rows, AblationA2Row{
		Strategy: "counting-filter",
		NsPerOp:  float64(sw.Elapsed().Nanoseconds()) / float64(churn),
		Bytes:    cf.SizeBytes(),
	})

	// Strategy 2: plain filter rebuilt from the full live set on every
	// removal batch (batched 1000 ops per rebuild to be charitable).
	pf := bloom.NewFilterForCapacity(live, 0.05)
	sw.Reset()
	rebuilds := churn / 1000
	if rebuilds == 0 {
		rebuilds = 1
	}
	for r := 0; r < rebuilds; r++ {
		pf.Clear()
		for _, k := range keys {
			pf.Add(k)
		}
	}
	out.Rows = append(out.Rows, AblationA2Row{
		Strategy: "rebuild-per-1k-ops",
		NsPerOp:  float64(sw.Elapsed().Nanoseconds()) / float64(churn),
		Bytes:    pf.SizeBytes(),
	})
	return out
}

// String renders the ablation.
func (a *AblationA2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation A2 — server-sketch maintenance (%d churn ops, 10k live keys)\n", a.Churn)
	fmt.Fprintf(&b, "%-20s %12s %12s\n", "strategy", "ns/op", "bytes")
	for _, r := range a.Rows {
		fmt.Fprintf(&b, "%-20s %12.1f %12d\n", r.Strategy, r.NsPerOp, r.Bytes)
	}
	return b.String()
}

// --- Ablation A3: query-index acceleration ---------------------------------

// AblationA3Row is one evaluation strategy's cost.
type AblationA3Row struct {
	Strategy  string
	NsPerEval float64
}

// AblationA3Result compares indexed versus scanning evaluation of the
// listing queries that the invalidation-heavy workloads re-render
// constantly.
type AblationA3Result struct {
	Docs  int
	Evals int
	Rows  []AblationA3Row
}

// RunAblationA3 measures the document store's equality index: the same
// category-listing query evaluated by full collection scan and via the
// index, over a catalog sized like a mid-size shop.
func RunAblationA3(scale Scale) *AblationA3Result {
	// The scan arm is O(docs × evals); scale both so quick test passes
	// stay quick while the full run exercises a realistic catalog.
	docs := int(20000 * float64(scale))
	if docs < 2000 {
		docs = 2000
	}
	// Few hundred evals suffice: each evaluation is deterministic, so
	// more repeats only average out scheduler noise.
	evals := int(300 * float64(scale))
	if evals < 50 {
		evals = 50
	}
	out := &AblationA3Result{Docs: docs, Evals: evals}

	store := storage.NewDocumentStore(clock.NewSimulated(time.Time{}))
	if err := workload.SeedCatalog(store, 1, docs); err != nil {
		panic(err) // deterministic seed into an empty store cannot fail
	}
	q := query.New("products", query.Eq("category", "shoes")).OrderBy("price", false).WithLimit(24)

	run := func(name string) {
		sw := clock.NewStopwatch(clock.System)
		for i := 0; i < evals; i++ {
			store.Query(q)
		}
		out.Rows = append(out.Rows, AblationA3Row{
			Strategy:  name,
			NsPerEval: float64(sw.Elapsed().Nanoseconds()) / float64(evals),
		})
	}
	run("full-scan")
	store.CreateIndex("products", "category")
	run("equality-index")
	return out
}

// String renders the ablation.
func (a *AblationA3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation A3 — listing-query evaluation (%d docs, %d evals)\n", a.Docs, a.Evals)
	fmt.Fprintf(&b, "%-16s %14s\n", "strategy", "ns/eval")
	for _, r := range a.Rows {
		fmt.Fprintf(&b, "%-16s %14.0f\n", r.Strategy, r.NsPerEval)
	}
	return b.String()
}

// --- Ablation A4: link prefetching ------------------------------------------

// AblationA4Row is one prefetch setting's outcome.
type AblationA4Row struct {
	PrefetchK    int
	DeviceShare  float64
	ProductP50ms float64
	ServiceLoad  uint64 // origin renders + edge hits (extra traffic cost)
}

// AblationA4Result quantifies the prefetch trade: faster next clicks
// versus extra service traffic.
type AblationA4Result struct{ Rows []AblationA4Row }

// RunAblationA4 runs identical traffic with prefetching off and on.
func RunAblationA4(seed int64, scale Scale) (*AblationA4Result, error) {
	out := &AblationA4Result{}
	ops := scale.ops(15000)
	for _, k := range []int{0, 3, 8} {
		r, err := RunField(FieldConfig{Mode: ModeSpeedKit, Seed: seed, Ops: ops, PrefetchLinks: k})
		if err != nil {
			return nil, err
		}
		st := r.Service.Stats()
		cd := r.Service.CDN().Stats()
		out.Rows = append(out.Rows, AblationA4Row{
			PrefetchK:    k,
			DeviceShare:  float64(r.TierCounts[proxy.SourceDevice]) / float64(r.Loads),
			ProductP50ms: r.LatencyByTier[proxy.SourceDevice].Quantile(0.5) / 1000,
			ServiceLoad:  st.OriginRenders + cd.Hits,
		})
	}
	return out, nil
}

// String renders the ablation.
func (a *AblationA4Result) String() string {
	var b strings.Builder
	b.WriteString("Ablation A4 — link prefetching\n")
	fmt.Fprintf(&b, "%10s %14s %16s %14s\n", "prefetch K", "device share", "device p50 [ms]", "service load")
	for _, r := range a.Rows {
		fmt.Fprintf(&b, "%10d %13.1f%% %16.2f %14d\n", r.PrefetchK, r.DeviceShare*100, r.ProductP50ms, r.ServiceLoad)
	}
	return b.String()
}

// newProxyWithBlocks creates a device proxy configured to fetch every
// dynamic block from the origin (ablation strategy 2).
func newProxyWithBlocks(svc *core.Service, u *session.User) *proxy.Proxy {
	return proxy.New(proxy.Config{
		User:    u,
		Region:  u.Region,
		Delta:   60 * time.Second,
		Clock:   svc.Clock(),
		Network: svc.Network(),
		Auditor: svc.Auditor(),
		OriginBlocks: map[string]bool{
			"greeting": true, "cart": true, "reco": true, "tier": true,
		},
	}, svc)
}
