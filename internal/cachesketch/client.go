package cachesketch

import (
	"sync/atomic"
	"time"

	"speedkit/internal/bloom"
	"speedkit/internal/clock"
)

// Client is the device-side half of the protocol: it holds the most
// recently fetched sketch snapshot and enforces the Δ refresh discipline.
// The client proxy consults it before serving anything from a local
// cache. Safe for concurrent use.
//
// The held snapshot lives behind an atomic pointer and the counters are
// atomics, so the per-request Check path — the sketch probe that gates
// every cached read — takes no lock and allocates nothing. Install
// publishes a new snapshot with a compare-and-swap that keeps the newest
// (generation, TakenAt) pair, so racing refreshes can never regress the
// held sketch.
type Client struct {
	clk   clock.Clock
	delta time.Duration
	snap  atomic.Pointer[Snapshot]

	refreshes   atomic.Uint64
	staleHits   atomic.Uint64
	freshPasses atomic.Uint64
}

// ClientStats counts client-side protocol decisions.
type ClientStats struct {
	// Refreshes counts installed sketch fetches.
	Refreshes uint64
	// StaleHits counts lookups where the sketch flagged the key.
	StaleHits uint64
	// FreshPasses counts lookups where the sketch cleared the key.
	FreshPasses uint64
}

// NewClient creates a client enforcing the given Δ. A zero or negative
// delta defaults to 60 s, a common production refresh interval.
func NewClient(clk clock.Clock, delta time.Duration) *Client {
	if clk == nil {
		clk = clock.CoarseSystem
	}
	if delta <= 0 {
		delta = 60 * time.Second
	}
	return &Client{clk: clk, delta: delta}
}

// Delta returns the client's staleness bound Δ.
func (c *Client) Delta() time.Duration { return c.delta }

// NeedsRefresh reports whether the held snapshot is missing or older than
// Δ. While this is true the client MUST NOT serve cached content based on
// the sketch — doing so would void the Δ-atomicity bound.
func (c *Client) NeedsRefresh() bool {
	return c.stale(c.snap.Load(), c.clk.Now())
}

//speedkit:hotpath
func (c *Client) stale(sn *Snapshot, now time.Time) bool {
	return sn == nil || now.Sub(sn.TakenAt) >= c.delta
}

// Install stores a freshly fetched snapshot. Snapshots older than the one
// held — lower generation, or same generation but an older TakenAt — are
// ignored (out-of-order fetches can happen with concurrent refreshes).
func (c *Client) Install(sn *Snapshot) {
	if sn == nil {
		return
	}
	for {
		cur := c.snap.Load()
		if cur != nil && (sn.Generation < cur.Generation ||
			(sn.Generation == cur.Generation && !sn.TakenAt.After(cur.TakenAt))) {
			return
		}
		if c.snap.CompareAndSwap(cur, sn) {
			c.refreshes.Add(1)
			return
		}
	}
}

// Generation returns the generation of the held snapshot (0 if none is
// held). Like Check, it is one atomic load — cheap enough for
// per-request trace stamping.
func (c *Client) Generation() uint64 {
	sn := c.snap.Load()
	if sn == nil {
		return 0
	}
	return sn.Generation
}

// Age returns how old the held snapshot is (Δ+1s if none is held, i.e.
// definitely stale).
func (c *Client) Age() time.Duration {
	sn := c.snap.Load()
	if sn == nil {
		return c.delta + time.Second
	}
	return c.clk.Now().Sub(sn.TakenAt)
}

// Decision is the outcome of a client-side coherence check.
type Decision int

// Possible coherence decisions.
const (
	// ServeFromCache: the sketch is fresh and clears the key; any cached
	// copy is coherent within Δ.
	ServeFromCache Decision = iota
	// Revalidate: the sketch flags the key (or a cached copy should be
	// bypassed); fetch an up-to-date representation.
	Revalidate
	// RefreshSketch: the sketch is older than Δ; it must be refreshed
	// before cached content may be used.
	RefreshSketch
)

// String names the decision.
func (d Decision) String() string {
	switch d {
	case ServeFromCache:
		return "serve-from-cache"
	case Revalidate:
		return "revalidate"
	case RefreshSketch:
		return "refresh-sketch"
	}
	return "unknown"
}

// Check runs the client-side coherence protocol for one key. It is
// lock-free and allocation-free: one atomic snapshot load, one clock
// read, and an inline Bloom probe.
//
//speedkit:hotpath
func (c *Client) Check(key string) Decision {
	sn := c.snap.Load()
	if c.stale(sn, c.clk.Now()) {
		return RefreshSketch
	}
	if sn.MightBeStale(key) {
		c.staleHits.Add(1)
		return Revalidate
	}
	c.freshPasses.Add(1)
	return ServeFromCache
}

// CheckBatch runs the coherence protocol for every key against one
// consistent snapshot, writing Check(keys[i]) into out[i] (out must be at
// least as long as keys). One atomic load and one clock read cover the
// whole batch — the fan-out path for callers deciding a page's worth of
// subresources at once — and the Bloom probes go through the filter's
// batched path. If the held snapshot is stale every verdict is
// RefreshSketch, exactly as per-key Check would answer.
//
//speedkit:hotpath
func (c *Client) CheckBatch(keys []string, out []Decision) {
	sn := c.snap.Load()
	if c.stale(sn, c.clk.Now()) {
		for i := range keys {
			out[i] = RefreshSketch
		}
		return
	}
	var hits [bloom.BatchSize]bool
	stale, fresh := uint64(0), uint64(0)
	for off := 0; off < len(keys); off += bloom.BatchSize {
		end := off + bloom.BatchSize
		if end > len(keys) {
			end = len(keys)
		}
		chunk := keys[off:end]
		sn.Filter.ContainsBatch(chunk, hits[:len(chunk)])
		for i := range chunk {
			if hits[i] {
				out[off+i] = Revalidate
				stale++
			} else {
				out[off+i] = ServeFromCache
				fresh++
			}
		}
	}
	if stale > 0 {
		c.staleHits.Add(stale)
	}
	if fresh > 0 {
		c.freshPasses.Add(fresh)
	}
}

// Stats returns a copy of the client counters. Each counter is read
// atomically; the triple is not a single consistent cut, which is fine
// for the monotone monitoring counters it feeds.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Refreshes:   c.refreshes.Load(),
		StaleHits:   c.staleHits.Load(),
		FreshPasses: c.freshPasses.Load(),
	}
}
