// Package cachesketch implements Speed Kit's custom cache coherence
// protocol — the paper's primary contribution. The protocol lets
// expiration-based caches (browser caches, service-worker caches, CDN
// edges) serve personalized-era content without unbounded staleness:
//
//   - The server maintains a counting Bloom filter of resource IDs that
//     were written while a cached copy with an unexpired TTL might still
//     exist anywhere. An ID enters the sketch on such a write and leaves
//     when the last possibly-live copy's TTL has passed.
//   - Clients periodically (every Δ at most) fetch a flattened, compact
//     Bloom filter of that set. Before using any locally cached entry, a
//     client checks the sketch: a hit forces a revalidation, a miss
//     permits serving from cache.
//
// Guarantee (Δ-atomicity): every read returns a value that was current at
// some instant within the last Δ. Bloom false positives only cause
// spurious revalidations — they can never cause staleness — so the bound
// holds regardless of filter sizing; sizing only tunes the revalidation
// overhead.
package cachesketch

import (
	"container/heap"
	"sync"
	"sync/atomic"
	"time"

	"speedkit/internal/bloom"
	"speedkit/internal/clock"
)

// ServerConfig sizes the server-side sketch.
type ServerConfig struct {
	// Capacity is the expected number of simultaneously stale-tracked
	// resources (default 10000).
	Capacity uint64
	// FalsePositiveRate targets the flattened sketch's FPR at capacity
	// (default 0.05, the value that balances sketch bytes against
	// spurious revalidations in the paper family's deployments).
	FalsePositiveRate float64
	// Clock supplies time (default system clock).
	Clock clock.Clock
	// Journal, when non-nil, receives every state-changing coherence
	// event for write-ahead logging. See the Journal contract in state.go.
	Journal Journal
}

func (c *ServerConfig) applyDefaults() {
	if c.Capacity == 0 {
		c.Capacity = 10000
	}
	if c.FalsePositiveRate <= 0 || c.FalsePositiveRate >= 1 {
		c.FalsePositiveRate = 0.05
	}
	if c.Clock == nil {
		c.Clock = clock.CoarseSystem
	}
}

// ServerStats counts protocol activity.
type ServerStats struct {
	// Adds is how many IDs entered the sketch.
	Adds uint64
	// Removes is how many IDs left after their last copy expired.
	Removes uint64
	// Extends is how many writes extended an ID already in the sketch.
	Extends uint64
	// WritesUncached counts writes to resources with no live cached copy
	// (no sketch entry needed).
	WritesUncached uint64
	// Snapshots is how many client sketches were served.
	Snapshots uint64
	// Flattens is how many times a snapshot actually flattened the
	// counting filter. Snapshots taken while the sketch's generation is
	// unchanged reuse the previously flattened filter, so under steady
	// read load Flattens stays far below Snapshots.
	Flattens uint64
	// Tracked is the current number of IDs in the sketch.
	Tracked int
	// TableSize is the current size of the expiration table.
	TableSize int
}

// Server is the origin-side half of the protocol. Safe for concurrent use.
type Server struct {
	mu  sync.Mutex
	cfg ServerConfig

	counting *bloom.Counting // guarded by mu
	// expiry is the expiration table: resource ID → the latest expiration
	// instant of any cached copy reported so far.
	expiry map[string]time.Time // guarded by mu
	// inSketch maps IDs currently in the sketch to their scheduled
	// removal instant.
	inSketch map[string]time.Time // guarded by mu
	// removals orders pending sketch removals and expiry-table cleanups.
	removals expiryHeap // guarded by mu

	// generation versions the counting filter's *contents*: it advances
	// whenever a key enters or leaves the sketch, and only then. Two
	// snapshots with equal generations are interchangeable.
	generation uint64 // guarded by mu
	// journaledGen is the highest generation already reported through
	// Journal.JournalGeneration — only generations actually exposed to
	// clients via Snapshot matter for recovery's monotonicity floor.
	journaledGen uint64      // guarded by mu
	stats        ServerStats // guarded by mu

	// flat caches the most recent flatten of the counting filter, keyed
	// by generation. While the generation is unchanged, Snapshot() reuses
	// it — a pointer load instead of an O(m) projection.
	flat atomic.Pointer[flatCache]

	// Crash-recovery cold-start mode (see ColdStart in state.go).
	coldUntil  time.Time     // guarded by mu; saturated-snapshot window end
	blindUntil time.Time     // guarded by mu; conservative write-tracking window end
	coldFilter *bloom.Filter // guarded by mu; the saturated sketch served while cold
}

// flatCache pairs a flattened client filter with the generation it was
// projected from.
type flatCache struct {
	gen    uint64
	filter *bloom.Filter
}

// NewServer creates a protocol server.
func NewServer(cfg ServerConfig) *Server {
	cfg.applyDefaults()
	return &Server{
		cfg:      cfg,
		counting: bloom.NewCountingForCapacity(cfg.Capacity, cfg.FalsePositiveRate),
		expiry:   make(map[string]time.Time),
		inSketch: make(map[string]time.Time),
	}
}

// expiryHeap is a min-heap of (when, key, kind) events.
type expiryEvent struct {
	when time.Time
	key  string
	kind eventKind
}

type eventKind int

const (
	evictSketch eventKind = iota
	cleanTable
)

type expiryHeap []expiryEvent

func (h expiryHeap) Len() int           { return len(h) }
func (h expiryHeap) Less(i, j int) bool { return h[i].when.Before(h[j].when) }
func (h expiryHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *expiryHeap) Push(x any)        { *h = append(*h, x.(expiryEvent)) }
func (h *expiryHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// advanceLocked processes all due removal/cleanup events and retires the
// cold-start window once it has fully elapsed.
func (s *Server) advanceLocked(now time.Time) {
	if s.coldFilter != nil && !s.coldUntil.After(now) {
		// Cold window over: resume serving the real (rebuilt) sketch. The
		// generation bump invalidates any snapshot of the saturated filter.
		s.coldFilter = nil
		s.generation++
	}
	for len(s.removals) > 0 && !s.removals[0].when.After(now) {
		ev := heap.Pop(&s.removals).(expiryEvent)
		switch ev.kind {
		case evictSketch:
			until, ok := s.inSketch[ev.key]
			// The scheduled removal may be stale if a later write
			// extended the ID's residency; only act on the final one.
			if ok && !until.After(ev.when) {
				s.counting.Remove(ev.key)
				delete(s.inSketch, ev.key)
				s.generation++
				s.stats.Removes++
			}
		case cleanTable:
			exp, ok := s.expiry[ev.key]
			if ok && !exp.After(ev.when) {
				delete(s.expiry, ev.key)
			}
		}
	}
}

// ReportCachedRead records that a cache somewhere now holds a copy of the
// resource expiring at expiresAt. Every cache fill (browser, service
// worker, CDN edge) must be reported — the expiration table is what lets
// the server know whether a later write can possibly be hidden by a
// cached copy. Reports with past expirations are ignored.
func (s *Server) ReportCachedRead(key string, expiresAt time.Time) {
	now := s.cfg.Clock.Now()
	if !expiresAt.After(now) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceLocked(now)
	if cur, ok := s.expiry[key]; !ok || expiresAt.After(cur) {
		s.expiry[key] = expiresAt
		heap.Push(&s.removals, expiryEvent{when: expiresAt, key: key, kind: cleanTable})
		if s.cfg.Journal != nil {
			s.cfg.Journal.JournalCachedRead(key, expiresAt)
		}
	}
}

// ReportWrite records a write to the resource. If any reported cached
// copy may still be live, the resource ID enters the sketch (or has its
// residency extended) until that copy's expiration — after which every
// cache has organically dropped the stale version and the ID can leave.
// Reports whether the ID is now tracked in the sketch.
func (s *Server) ReportWrite(key string) bool {
	now := s.cfg.Clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceLocked(now)
	return s.reportWriteLocked(key, now)
}

// ReportWrites records a batch of writes in one critical section: one
// clock read, one lock acquisition, and one pass over due removals cover
// the whole batch. Journal replay uses it to apply runs of consecutive
// write records without paying per-key lock traffic. The resulting state
// is identical to calling ReportWrite for each key in order (all keys are
// reported at the same instant, which per-key calls under an unmoving
// clock also produce). Returns how many of the keys are now tracked.
func (s *Server) ReportWrites(keys []string) int {
	if len(keys) == 0 {
		return 0
	}
	now := s.cfg.Clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceLocked(now)
	tracked := 0
	for _, key := range keys {
		if s.reportWriteLocked(key, now) {
			tracked++
		}
	}
	return tracked
}

// reportWriteLocked applies one write report at instant now. Caller holds
// mu and has already run advanceLocked(now).
func (s *Server) reportWriteLocked(key string, now time.Time) bool {
	until, live := s.expiry[key]
	if !live || !until.After(now) {
		// Inside the post-crash blind window the expiration table cannot
		// be trusted to know about pre-crash cache fills whose reports
		// died with the log, so an "uncached" write is still tracked, with
		// residency covering the longest such copy could survive.
		if s.blindUntil.After(now) {
			until, live = s.blindUntil, true
		} else {
			s.stats.WritesUncached++
			return false
		}
	}
	if cur, in := s.inSketch[key]; in {
		if until.After(cur) {
			s.inSketch[key] = until
			heap.Push(&s.removals, expiryEvent{when: until, key: key, kind: evictSketch})
		}
		s.stats.Extends++
		if s.cfg.Journal != nil {
			s.cfg.Journal.JournalWrite(key)
		}
		return true
	}
	s.counting.Add(key)
	s.inSketch[key] = until
	s.generation++
	heap.Push(&s.removals, expiryEvent{when: until, key: key, kind: evictSketch})
	s.stats.Adds++
	if s.cfg.Journal != nil {
		s.cfg.Journal.JournalWrite(key)
	}
	return true
}

// Contains reports whether the resource is currently tracked as
// potentially stale. Used for server-side revalidation decisions and
// tests; clients use their own Snapshot.
func (s *Server) Contains(key string) bool {
	now := s.cfg.Clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceLocked(now)
	_, ok := s.inSketch[key]
	return ok
}

// Snapshot returns the compact client sketch for the counting filter's
// current state. The snapshot is immutable and safe to share across
// clients. The O(m) flatten is generation-cached: it runs only when the
// sketch's contents changed since the previous snapshot; otherwise the
// cached filter is reused and the call is a pointer load plus a fresh
// TakenAt stamp — sound because an unchanged generation means no key
// entered or left the sketch, so the old projection still describes the
// state at `now` exactly.
func (s *Server) Snapshot() *Snapshot {
	now := s.cfg.Clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceLocked(now)
	s.stats.Snapshots++
	if s.cfg.Journal != nil && s.generation > s.journaledGen {
		s.journaledGen = s.generation
		s.cfg.Journal.JournalGeneration(s.generation)
	}
	if s.coldFilter != nil {
		// Cold-start window: serve the saturated all-stale sketch so every
		// client revalidates. Not flat-cached — the window retires itself.
		return &Snapshot{Filter: s.coldFilter, Generation: s.generation, TakenAt: now}
	}
	fc := s.flat.Load()
	if fc == nil || fc.gen != s.generation {
		fc = &flatCache{gen: s.generation, filter: s.counting.Flatten()}
		s.flat.Store(fc)
		s.stats.Flattens++
	}
	return &Snapshot{
		Filter:     fc.filter,
		Generation: fc.gen,
		TakenAt:    now,
	}
}

// Generation returns the current sketch-content generation: it advances
// exactly when a key enters or leaves the sketch. Monitoring reads it to
// tell whether the coherence state moved between two observations.
func (s *Server) Generation() uint64 {
	now := s.cfg.Clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceLocked(now)
	return s.generation
}

// Stats returns a copy of the counters plus current sizes.
func (s *Server) Stats() ServerStats {
	now := s.cfg.Clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceLocked(now)
	st := s.stats
	st.Tracked = len(s.inSketch)
	st.TableSize = len(s.expiry)
	return st
}

// FilterParams returns the (m, k) Bloom parameters of the server's
// counting filter — the parameters every flattened snapshot inherits. The
// cluster merge layer validates incoming shard frames against them before
// unioning, so a mis-sized node is rejected with bloom.ErrParamMismatch
// instead of silently corrupting the merged sketch.
func (s *Server) FilterParams() (m, k uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counting.Bits(), s.counting.Hashes()
}

// SketchBytes returns the wire size of a flattened snapshot.
func (s *Server) SketchBytes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	words := (int(s.counting.Bits()) + 63) / 64
	return words*8 + 13
}

// Snapshot is one generation of the client-facing sketch.
type Snapshot struct {
	Filter     *bloom.Filter
	Generation uint64
	TakenAt    time.Time
}

// MightBeStale reports whether the key hits the sketch. True means "a
// cached copy of this resource could be stale — revalidate"; false means
// every cached copy is provably coherent up to the snapshot time.
//
//speedkit:hotpath
func (sn *Snapshot) MightBeStale(key string) bool {
	return sn.Filter.Contains(key)
}

// MightBeStaleBatch answers MightBeStale for every key at once, writing
// the verdicts into hits (which must be at least as long as keys). The
// probes run through the filter's batched path, so one snapshot suffices
// for the whole group and nothing is allocated.
//
//speedkit:hotpath
func (sn *Snapshot) MightBeStaleBatch(keys []string, hits []bool) {
	sn.Filter.ContainsBatch(keys, hits)
}

// Marshal encodes the snapshot's filter for the wire.
func (sn *Snapshot) Marshal() ([]byte, error) {
	return sn.Filter.MarshalBinary()
}
