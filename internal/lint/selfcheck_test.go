package lint

import "testing"

// TestRepoIsLintClean is the gate speedkit-lint enforces, run in-process:
// the whole module must produce zero findings, so `go run
// ./cmd/speedkit-lint ./...` exits 0 on the tree as committed.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	m := newTestModule(t)
	pkgs, err := m.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; loader is missing parts of the module", len(pkgs))
	}
	diags := Run(pkgs, Analyzers())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
