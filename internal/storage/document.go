package storage

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"speedkit/internal/clock"
	"speedkit/internal/query"
)

// ChangeKind classifies a document-store mutation.
type ChangeKind int

// Change kinds emitted on the change stream.
const (
	ChangeInsert ChangeKind = iota
	ChangeUpdate
	ChangeDelete
)

// String names the change kind.
func (k ChangeKind) String() string {
	switch k {
	case ChangeInsert:
		return "insert"
	case ChangeUpdate:
		return "update"
	case ChangeDelete:
		return "delete"
	}
	return fmt.Sprintf("ChangeKind(%d)", int(k))
}

// ChangeEvent describes one mutation, carrying both the before- and
// after-image so the invalidation engine can evaluate predicates against
// each side (a query result changes iff exactly one image matches).
type ChangeEvent struct {
	Collection string
	ID         string
	Kind       ChangeKind
	Before     map[string]any // nil for inserts
	After      map[string]any // nil for deletes
	Version    uint64         // document version after the change
	Time       time.Time
}

// ErrNotFound is returned by reads of absent documents.
var ErrNotFound = errors.New("storage: document not found")

// ErrExists is returned by Insert when the ID is already taken.
var ErrExists = errors.New("storage: document already exists")

// DocumentStore is the system of record: named collections of schemaless
// documents with per-document versions and a synchronous, ordered change
// stream. Watchers are invoked inline under no lock, after the mutation
// has committed, in commit order; this gives the invalidation pipeline the
// exactly-once, in-order view it needs without goroutine nondeterminism in
// the simulation.
type DocumentStore struct {
	mu          sync.RWMutex
	collections map[string]map[string]versionedDoc
	indexes     map[string]map[string]fieldIndex // collection → field → index
	idxStats    IndexStats
	clk         clock.Clock
	stats       DocStats

	watcherMu sync.Mutex
	watchers  map[int]func(ChangeEvent)
	nextWatch int
	// streamMu serializes event dispatch so watchers observe commit order
	// even when mutations race.
	streamMu sync.Mutex
}

type versionedDoc struct {
	doc     map[string]any
	version uint64
}

// DocStats counts document-store operations.
type DocStats struct {
	Inserts, Updates, Deletes, Reads, Queries uint64
}

// NewDocumentStore creates an empty store using clk (nil means system
// clock).
func NewDocumentStore(clk clock.Clock) *DocumentStore {
	if clk == nil {
		clk = clock.System
	}
	return &DocumentStore{
		collections: make(map[string]map[string]versionedDoc),
		clk:         clk,
		watchers:    make(map[int]func(ChangeEvent)),
	}
}

// cloneDoc deep-copies one level of nesting, which covers the document
// shapes used throughout the system (scalar fields plus one map level).
func cloneDoc(d map[string]any) map[string]any {
	if d == nil {
		return nil
	}
	out := make(map[string]any, len(d))
	for k, v := range d {
		if m, ok := v.(map[string]any); ok {
			inner := make(map[string]any, len(m))
			for ik, iv := range m {
				inner[ik] = iv
			}
			out[k] = inner
			continue
		}
		out[k] = v
	}
	return out
}

// Insert adds a new document; fails with ErrExists if id is taken.
func (s *DocumentStore) Insert(collection, id string, doc map[string]any) error {
	s.streamMu.Lock()
	defer s.streamMu.Unlock()

	s.mu.Lock()
	coll, ok := s.collections[collection]
	if !ok {
		coll = make(map[string]versionedDoc)
		s.collections[collection] = coll
	}
	if _, taken := coll[id]; taken {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s/%s", ErrExists, collection, id)
	}
	stored := cloneDoc(doc)
	coll[id] = versionedDoc{doc: stored, version: 1}
	s.updateIndexesLocked(collection, id, nil, stored)
	s.stats.Inserts++
	now := s.clk.Now()
	s.mu.Unlock()

	s.dispatch(ChangeEvent{
		Collection: collection, ID: id, Kind: ChangeInsert,
		After: cloneDoc(stored), Version: 1, Time: now,
	})
	return nil
}

// Update replaces the document at id; fails with ErrNotFound if absent.
func (s *DocumentStore) Update(collection, id string, doc map[string]any) error {
	s.streamMu.Lock()
	defer s.streamMu.Unlock()

	s.mu.Lock()
	coll := s.collections[collection]
	old, ok := coll[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s/%s", ErrNotFound, collection, id)
	}
	stored := cloneDoc(doc)
	v := versionedDoc{doc: stored, version: old.version + 1}
	coll[id] = v
	s.updateIndexesLocked(collection, id, old.doc, stored)
	s.stats.Updates++
	now := s.clk.Now()
	s.mu.Unlock()

	s.dispatch(ChangeEvent{
		Collection: collection, ID: id, Kind: ChangeUpdate,
		Before: cloneDoc(old.doc), After: cloneDoc(stored), Version: v.version, Time: now,
	})
	return nil
}

// Upsert inserts or replaces, never failing on existence.
func (s *DocumentStore) Upsert(collection, id string, doc map[string]any) {
	if err := s.Update(collection, id, doc); errors.Is(err, ErrNotFound) {
		// Racing inserts are impossible here: streamMu is not held across
		// the two calls, but the simulation's writers are the only
		// mutators and Insert handles the duplicate case by erroring,
		// which we translate into a retry as Update.
		if err := s.Insert(collection, id, doc); errors.Is(err, ErrExists) {
			_ = s.Update(collection, id, doc)
		}
	}
}

// Patch applies a partial update: fields in patch overwrite or add to the
// existing document; a nil value removes the field.
func (s *DocumentStore) Patch(collection, id string, patch map[string]any) error {
	s.streamMu.Lock()
	defer s.streamMu.Unlock()

	s.mu.Lock()
	coll := s.collections[collection]
	old, ok := coll[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s/%s", ErrNotFound, collection, id)
	}
	updated := cloneDoc(old.doc)
	for k, v := range patch {
		if v == nil {
			delete(updated, k)
			continue
		}
		updated[k] = v
	}
	v := versionedDoc{doc: updated, version: old.version + 1}
	coll[id] = v
	s.updateIndexesLocked(collection, id, old.doc, updated)
	s.stats.Updates++
	now := s.clk.Now()
	s.mu.Unlock()

	s.dispatch(ChangeEvent{
		Collection: collection, ID: id, Kind: ChangeUpdate,
		Before: cloneDoc(old.doc), After: cloneDoc(updated), Version: v.version, Time: now,
	})
	return nil
}

// Delete removes the document at id; fails with ErrNotFound if absent.
func (s *DocumentStore) Delete(collection, id string) error {
	s.streamMu.Lock()
	defer s.streamMu.Unlock()

	s.mu.Lock()
	coll := s.collections[collection]
	old, ok := coll[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s/%s", ErrNotFound, collection, id)
	}
	delete(coll, id)
	s.updateIndexesLocked(collection, id, old.doc, nil)
	s.stats.Deletes++
	now := s.clk.Now()
	s.mu.Unlock()

	s.dispatch(ChangeEvent{
		Collection: collection, ID: id, Kind: ChangeDelete,
		Before: cloneDoc(old.doc), Version: old.version + 1, Time: now,
	})
	return nil
}

// Get returns a copy of the document and its version.
func (s *DocumentStore) Get(collection, id string) (map[string]any, uint64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.stats.Reads++
	v, ok := s.collections[collection][id]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %s/%s", ErrNotFound, collection, id)
	}
	return cloneDoc(v.doc), v.version, nil
}

// Query evaluates q against the store and returns matching documents
// (copies) with the query's sort and limit applied. Every returned doc
// has its ID injected under "id" if not already present. When an
// equality index covers one of the filter's Eq legs, only the index's
// candidates are evaluated; results are identical to a full scan.
func (s *DocumentStore) Query(q query.Query) []map[string]any {
	snapshot := s.queryCandidates(q)
	s.mu.Lock()
	s.stats.Queries++
	s.mu.Unlock()
	return q.Apply(snapshot)
}

// Count returns the number of documents in the collection.
func (s *DocumentStore) Count(collection string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.collections[collection])
}

// Collections lists collection names, sorted.
func (s *DocumentStore) Collections() []string {
	s.mu.RLock()
	out := make([]string, 0, len(s.collections))
	for name := range s.collections {
		out = append(out, name)
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Stats returns a copy of the operation counters.
func (s *DocumentStore) Stats() DocStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.stats
}

// Watch registers fn to be called synchronously, in commit order, for
// every subsequent change. The returned cancel function unregisters it.
func (s *DocumentStore) Watch(fn func(ChangeEvent)) (cancel func()) {
	s.watcherMu.Lock()
	id := s.nextWatch
	s.nextWatch++
	s.watchers[id] = fn
	s.watcherMu.Unlock()
	return func() {
		s.watcherMu.Lock()
		delete(s.watchers, id)
		s.watcherMu.Unlock()
	}
}

// dispatch delivers ev to all watchers. Callers hold streamMu, which is
// what makes delivery order equal commit order.
func (s *DocumentStore) dispatch(ev ChangeEvent) {
	s.watcherMu.Lock()
	ids := make([]int, 0, len(s.watchers))
	for id := range s.watchers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	fns := make([]func(ChangeEvent), len(ids))
	for i, id := range ids {
		fns[i] = s.watchers[id]
	}
	s.watcherMu.Unlock()
	for _, fn := range fns {
		fn(ev)
	}
}
