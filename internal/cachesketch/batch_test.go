package cachesketch

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"speedkit/internal/bloom"
	"speedkit/internal/clock"
)

// ReportWrites must leave the server in the same state as per-key
// ReportWrite calls under an unmoving clock: same sketch bytes, same
// generation movement, same tracked set, same counters. Property-tested
// over random mixes of cached/uncached/repeated keys so the add, extend,
// and uncached branches all run through the batched path.
func TestReportWritesMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 25; trial++ {
		seq, seqClk := newTestServer()
		bat, batClk := newTestServer()

		// Shared random scenario: some keys have live cached copies.
		nKeys := 1 + rng.Intn(60)
		keys := make([]string, nKeys)
		for i := range keys {
			keys[i] = fmt.Sprintf("/p/%d", i)
			if rng.Intn(3) > 0 {
				ttl := time.Duration(1+rng.Intn(3600)) * time.Second
				seq.ReportCachedRead(keys[i], seqClk.Now().Add(ttl))
				bat.ReportCachedRead(keys[i], batClk.Now().Add(ttl))
			}
		}
		writes := make([]string, 1+rng.Intn(100))
		for i := range writes {
			writes[i] = keys[rng.Intn(nKeys)]
		}

		seqTracked := 0
		for _, k := range writes {
			if seq.ReportWrite(k) {
				seqTracked++
			}
		}
		batTracked := bat.ReportWrites(writes)
		if seqTracked != batTracked {
			t.Fatalf("trial %d: tracked %d sequential vs %d batched", trial, seqTracked, batTracked)
		}

		ss, bs := seq.Stats(), bat.Stats()
		if ss != bs {
			t.Fatalf("trial %d: stats diverge\nseq %+v\nbat %+v", trial, ss, bs)
		}
		if sg, bg := seq.Generation(), bat.Generation(); sg != bg {
			t.Fatalf("trial %d: generation %d vs %d", trial, sg, bg)
		}
		sb, err := seq.Snapshot().Marshal()
		if err != nil {
			t.Fatal(err)
		}
		bb, err := bat.Snapshot().Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sb, bb) {
			t.Fatalf("trial %d: snapshot bytes diverge after batched writes", trial)
		}
	}
}

func TestReportWritesEmpty(t *testing.T) {
	s, _ := newTestServer()
	if n := s.ReportWrites(nil); n != 0 {
		t.Fatalf("ReportWrites(nil) = %d", n)
	}
	if st := s.Stats(); st != (ServerStats{}) {
		t.Fatalf("empty batch moved stats: %+v", st)
	}
}

// CheckBatch must agree with per-key Check against the same snapshot, and
// count the same stale/fresh totals.
func TestCheckBatchMatchesCheck(t *testing.T) {
	s, clk := newTestServer()
	var keys []string
	for i := 0; i < 40; i++ {
		k := fmt.Sprintf("/p/%d", i)
		keys = append(keys, k)
		if i%3 == 0 {
			s.ReportCachedRead(k, clk.Now().Add(time.Hour))
			s.ReportWrite(k)
		}
	}
	single := NewClient(clk, time.Hour)
	batched := NewClient(clk, time.Hour)
	sn := s.Snapshot()
	single.Install(sn)
	batched.Install(sn)

	out := make([]Decision, len(keys))
	batched.CheckBatch(keys, out)
	for i, k := range keys {
		if want := single.Check(k); out[i] != want {
			t.Fatalf("CheckBatch[%q] = %v, Check = %v", k, out[i], want)
		}
	}
	if ss, bs := single.Stats(), batched.Stats(); ss.StaleHits != bs.StaleHits || ss.FreshPasses != bs.FreshPasses {
		t.Fatalf("counters diverge: single %+v batched %+v", ss, bs)
	}
}

// Without a fresh sketch every batched verdict must be RefreshSketch —
// the conservative answer that forbids serving from cache.
func TestCheckBatchStaleSnapshot(t *testing.T) {
	clk := clock.NewSimulated(time.Time{})
	c := NewClient(clk, 30*time.Second)
	keys := []string{"/a", "/b", "/c"}
	out := make([]Decision, len(keys))
	c.CheckBatch(keys, out)
	for i, d := range out {
		if d != RefreshSketch {
			t.Fatalf("out[%d] = %v, want RefreshSketch", i, d)
		}
	}
	// Install, then age the snapshot past Δ: same conservative answer.
	s, _ := newTestServer()
	c.Install(s.Snapshot())
	clk.Advance(31 * time.Second)
	c.CheckBatch(keys, out)
	if out[0] != RefreshSketch {
		t.Fatalf("aged snapshot verdict = %v, want RefreshSketch", out[0])
	}
}

// CheckBatch and MightBeStaleBatch are //speedkit:hotpath: steady-state
// batched checks must allocate nothing even for batches longer than
// bloom.BatchSize (chunking reslices, never copies).
func TestCheckBatchZeroAlloc(t *testing.T) {
	s, clk := newTestServer()
	keys := make([]string, 3*bloom.BatchSize+5)
	for i := range keys {
		keys[i] = fmt.Sprintf("/p/%d", i)
		if i%2 == 0 {
			s.ReportCachedRead(keys[i], clk.Now().Add(time.Hour))
			s.ReportWrite(keys[i])
		}
	}
	cl := NewClient(clk, time.Hour)
	sn := s.Snapshot()
	cl.Install(sn)
	out := make([]Decision, len(keys))
	if n := testing.AllocsPerRun(1000, func() {
		cl.CheckBatch(keys, out)
	}); n != 0 {
		t.Fatalf("CheckBatch allocates %.1f per run, want 0", n)
	}
	hits := make([]bool, len(keys))
	if n := testing.AllocsPerRun(1000, func() {
		sn.MightBeStaleBatch(keys, hits)
	}); n != 0 {
		t.Fatalf("MightBeStaleBatch allocates %.1f per run, want 0", n)
	}
}
