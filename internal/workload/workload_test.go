package workload

import (
	"math/rand"
	"testing"
	"time"

	"speedkit/internal/clock"
	"speedkit/internal/storage"
)

func TestGeneratorDeterministic(t *testing.T) {
	a := NewGenerator(Config{Seed: 1})
	b := NewGenerator(Config{Seed: 1})
	for i := 0; i < 500; i++ {
		opA, opB := a.Next(), b.Next()
		if opA != opB {
			t.Fatalf("op %d diverged: %+v vs %+v", i, opA, opB)
		}
	}
	c := NewGenerator(Config{Seed: 2})
	diff := false
	for i := 0; i < 100; i++ {
		if a.Next() != c.Next() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestGeneratorOpMixRoughlyMatchesConfig(t *testing.T) {
	g := NewGenerator(Config{Seed: 3, WriteFraction: 0.1})
	writes, views := 0, 0
	for i := 0; i < 20000; i++ {
		op := g.Next()
		switch op.Kind {
		case UpdatePrice, UpdateStock:
			writes++
		case ViewHome, ViewCategory, ViewProduct:
			views++
		}
	}
	frac := float64(writes) / 20000
	if frac < 0.07 || frac > 0.13 {
		t.Fatalf("write fraction = %v, want ~0.1", frac)
	}
	if views == 0 {
		t.Fatal("no views generated")
	}
}

func TestGeneratorZipfSkew(t *testing.T) {
	g := NewGenerator(Config{Seed: 4, Products: 1000, WriteFraction: 0})
	counts := map[string]int{}
	total := 0
	for i := 0; i < 30000; i++ {
		op := g.Next()
		if op.Kind == ViewProduct {
			counts[op.ProductID]++
			total++
		}
	}
	// Zipf: the single most popular product should draw >10% of views,
	// and the top-10 more than half.
	top := 0
	for _, c := range counts {
		if c > top {
			top = c
		}
	}
	if float64(top)/float64(total) < 0.10 {
		t.Fatalf("head product only %.3f of views — not Zipfian", float64(top)/float64(total))
	}
}

func TestGeneratorFunnelShape(t *testing.T) {
	g := NewGenerator(Config{Seed: 5, Users: 10, WriteFraction: 0})
	kinds := map[OpKind]int{}
	for i := 0; i < 20000; i++ {
		kinds[g.Next().Kind]++
	}
	// Every funnel stage must be exercised.
	for _, k := range []OpKind{ViewHome, ViewCategory, ViewProduct, AddToCart, Checkout} {
		if kinds[k] == 0 {
			t.Fatalf("op kind %v never generated", k)
		}
	}
	// Funnel narrows: home >= checkout.
	if kinds[Checkout] >= kinds[ViewProduct] {
		t.Fatalf("funnel inverted: %d checkouts vs %d product views", kinds[Checkout], kinds[ViewProduct])
	}
}

func TestGeneratorGapsPositiveAndLoadConsistent(t *testing.T) {
	g := NewGenerator(Config{Seed: 6, MeanOpsPerSecond: 100, WriteFraction: 0})
	var total time.Duration
	const n = 10000
	for i := 0; i < n; i++ {
		op := g.Next()
		if op.Gap < 0 {
			t.Fatal("negative gap")
		}
		total += op.Gap
	}
	opsPerSec := float64(n) / total.Seconds()
	if opsPerSec < 85 || opsPerSec > 115 {
		t.Fatalf("ops/s = %v, want ~100", opsPerSec)
	}
	if g.Elapsed() != total {
		t.Fatal("Elapsed mismatch")
	}
}

func TestGeneratorDiurnalModulation(t *testing.T) {
	g := NewGenerator(Config{Seed: 7, Diurnal: true, MeanOpsPerSecond: 10})
	// Collect per-6-hour op counts over 2 simulated days.
	buckets := map[int]int{}
	for g.Elapsed() < 48*time.Hour {
		g.Next()
		buckets[int(g.Elapsed().Hours())/6]++
	}
	// Afternoon buckets (12-18h) must outdraw night buckets (0-6h).
	night := buckets[0] + buckets[4]
	afternoon := buckets[2] + buckets[6]
	if afternoon <= night {
		t.Fatalf("diurnal curve flat: night=%d afternoon=%d", night, afternoon)
	}
}

func TestGeneratorBursts(t *testing.T) {
	g := NewGenerator(Config{Seed: 8, BurstEvery: time.Minute, BurstSize: 20,
		WriteFraction: 0, MeanOpsPerSecond: 10})
	// Scan ~5 simulated minutes; expect bursts of consecutive writes.
	maxRun, run := 0, 0
	for g.Elapsed() < 5*time.Minute {
		op := g.Next()
		if op.Kind.IsWrite() && op.Kind != Checkout {
			run++
			if run > maxRun {
				maxRun = run
			}
		} else {
			run = 0
		}
	}
	if maxRun < 15 {
		t.Fatalf("max write run = %d, want a burst of ~20", maxRun)
	}
}

func TestOpKindStringAndIsWrite(t *testing.T) {
	for k := ViewHome; k <= UpdateStock; k++ {
		if k.String() == "unknown" {
			t.Fatalf("kind %d unnamed", k)
		}
	}
	if OpKind(99).String() != "unknown" {
		t.Fatal("unknown kind named")
	}
	if !UpdatePrice.IsWrite() || !Checkout.IsWrite() || ViewHome.IsWrite() || AddToCart.IsWrite() {
		t.Fatal("IsWrite wrong")
	}
}

func TestPathHelpers(t *testing.T) {
	if ProductID(7) != "p00007" {
		t.Fatalf("ProductID = %s", ProductID(7))
	}
	if ProductPath(7) != "/product/p00007" {
		t.Fatalf("ProductPath = %s", ProductPath(7))
	}
	if CategoryPath("shoes") != "/category/shoes" {
		t.Fatalf("CategoryPath = %s", CategoryPath("shoes"))
	}
	if CategoryOf(0) != "shoes" || CategoryOf(10) != "shoes" || CategoryOf(1) != "shirts" {
		t.Fatal("CategoryOf wrong")
	}
}

func TestSeedCatalog(t *testing.T) {
	docs := storage.NewDocumentStore(clock.NewSimulated(time.Time{}))
	if err := SeedCatalog(docs, 1, 100); err != nil {
		t.Fatal(err)
	}
	if docs.Count("products") != 100 {
		t.Fatalf("count = %d", docs.Count("products"))
	}
	doc, _, err := docs.Get("products", ProductID(42))
	if err != nil {
		t.Fatal(err)
	}
	price, ok := doc["price"].(float64)
	if !ok || price < 5 || price >= 205 {
		t.Fatalf("price = %v", doc["price"])
	}
	if doc["category"] != CategoryOf(42) {
		t.Fatalf("category = %v", doc["category"])
	}
	// Double seeding collides.
	if err := SeedCatalog(docs, 1, 10); err == nil {
		t.Fatal("double seed accepted")
	}
}

func TestApplyWrite(t *testing.T) {
	docs := storage.NewDocumentStore(clock.NewSimulated(time.Time{}))
	if err := SeedCatalog(docs, 1, 10); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	before, _, _ := docs.Get("products", ProductID(3))

	path, err := ApplyWrite(docs, rng, Op{Kind: UpdatePrice, ProductID: ProductID(3)})
	if err != nil || path != "/product/p00003" {
		t.Fatalf("path=%s err=%v", path, err)
	}
	after, _, _ := docs.Get("products", ProductID(3))
	if before["price"] == after["price"] {
		t.Fatal("price unchanged")
	}

	path, err = ApplyWrite(docs, rng, Op{Kind: UpdateStock, ProductID: ProductID(3)})
	if err != nil || path == "" {
		t.Fatalf("stock write: path=%s err=%v", path, err)
	}

	path, err = ApplyWrite(docs, rng, Op{Kind: AddToCart, ProductID: ProductID(3)})
	if err != nil || path != "" {
		t.Fatalf("cart op wrote: path=%s err=%v", path, err)
	}

	if _, err := ApplyWrite(docs, rng, Op{Kind: UpdatePrice, ProductID: "ghost"}); err == nil {
		t.Fatal("write to missing product accepted")
	}
}
