package proxy

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"speedkit/internal/cache"
	"speedkit/internal/cachesketch"
	"speedkit/internal/clock"
	"speedkit/internal/gdpr"
	"speedkit/internal/netsim"
	"speedkit/internal/origin"
	"speedkit/internal/session"
)

// fakeTransport is a controllable Transport for proxy unit tests.
type fakeTransport struct {
	clk        *clock.Simulated
	sketchSrv  *cachesketch.Server
	pages      map[string]cache.Entry
	fetchSrc   Source
	fetchErr   error
	blockErr   error
	fetchHook  func() error // consulted before each Fetch when set
	fetchLat   time.Duration
	sketchLat  time.Duration
	sketchDown bool
	blockCalls int
	lastBlocks []string
	lastUser   *session.User
}

func (f *fakeTransport) FetchSketch(_ context.Context, _ netsim.Region) (*cachesketch.Snapshot, time.Duration, error) {
	if f.sketchDown {
		return nil, 0, ErrOffline
	}
	return f.sketchSrv.Snapshot(), f.sketchLat, nil
}

func (f *fakeTransport) Fetch(_ context.Context, _ netsim.Region, path string) (cache.Entry, time.Duration, Source, error) {
	if f.fetchHook != nil {
		if err := f.fetchHook(); err != nil {
			return cache.Entry{}, 0, 0, err
		}
	}
	if f.fetchErr != nil {
		return cache.Entry{}, 0, 0, f.fetchErr
	}
	e, ok := f.pages[path]
	if !ok {
		return cache.Entry{}, 0, 0, errors.New("no such page")
	}
	// Mimic the service: report the cache fill to the sketch server.
	f.sketchSrv.ReportCachedRead(path, e.ExpiresAt)
	return e, f.fetchLat, f.fetchSrc, nil
}

func (f *fakeTransport) Revalidate(_ context.Context, _ netsim.Region, path string, knownVersion uint64) (RevalidationResult, error) {
	if f.fetchErr != nil {
		return RevalidationResult{}, f.fetchErr
	}
	e, ok := f.pages[path]
	if !ok {
		return RevalidationResult{}, errors.New("no such page")
	}
	if e.Version == knownVersion {
		fresh := cache.TTLEntry(f.clk, path, nil, knownVersion, time.Hour)
		f.sketchSrv.ReportCachedRead(path, fresh.ExpiresAt)
		return RevalidationResult{NotModified: true, Entry: fresh,
			Latency: 5 * time.Millisecond, Source: SourceOrigin}, nil
	}
	f.sketchSrv.ReportCachedRead(path, e.ExpiresAt)
	return RevalidationResult{Entry: e, Latency: f.fetchLat, Source: f.fetchSrc}, nil
}

func (f *fakeTransport) FetchBlocks(_ context.Context, _ netsim.Region, names []string, u *session.User) (map[string][]byte, time.Duration, error) {
	if f.blockErr != nil {
		return nil, 0, f.blockErr
	}
	f.blockCalls++
	f.lastBlocks = names
	f.lastUser = u
	out := make(map[string][]byte, len(names))
	for _, n := range names {
		out[n] = []byte("<origin:" + n + ">")
	}
	return out, 30 * time.Millisecond, nil
}

func newTestProxy(t *testing.T, user *session.User) (*Proxy, *fakeTransport, *clock.Simulated) {
	t.Helper()
	clk := clock.NewSimulated(time.Time{})
	tr := &fakeTransport{
		clk:       clk,
		sketchSrv: cachesketch.NewServer(cachesketch.ServerConfig{Clock: clk}),
		pages:     make(map[string]cache.Entry),
		fetchSrc:  SourceCDN,
		fetchLat:  40 * time.Millisecond,
		sketchLat: 15 * time.Millisecond,
	}
	body := []byte("<html>shell " + origin.BlockPlaceholder("greeting") + origin.BlockPlaceholder("cart") + "</html>")
	e := cache.TTLEntry(clk, "/", body, 1, time.Hour)
	e.Metadata = BlocksMetadata([]string{"greeting", "cart"})
	tr.pages["/"] = e

	plain := cache.TTLEntry(clk, "/plain", []byte("<html>no blocks</html>"), 1, time.Hour)
	tr.pages["/plain"] = plain

	p := New(Config{
		User:    user,
		Region:  netsim.EU,
		Delta:   30 * time.Second,
		Clock:   clk,
		Network: netsim.DefaultTopology(1),
		Auditor: gdpr.NewAuditor(),
	}, tr)
	return p, tr, clk
}

func loggedInUser() *session.User {
	return &session.User{ID: "u1", Name: "Ada", Email: "ada@example.com",
		LoggedIn: true, Tier: "gold", ConsentPersonalization: true}
}

func TestLoadColdFetchesSketchAndShell(t *testing.T) {
	p, _, _ := newTestProxy(t, loggedInUser())
	res, err := p.Load(context.Background(), "/")
	if err != nil {
		t.Fatal(err)
	}
	if !res.SketchRefreshed {
		t.Fatal("cold load did not refresh sketch")
	}
	if res.Source != SourceCDN {
		t.Fatalf("source = %v", res.Source)
	}
	if res.Latency < 55*time.Millisecond {
		t.Fatalf("latency %v missing sketch+fetch costs", res.Latency)
	}
	if res.Version != 1 {
		t.Fatalf("version = %d", res.Version)
	}
}

func TestLoadSecondHitServedFromDevice(t *testing.T) {
	p, _, _ := newTestProxy(t, loggedInUser())
	_, _ = p.Load(context.Background(), "/")
	res, err := p.Load(context.Background(), "/")
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != SourceDevice {
		t.Fatalf("source = %v, want device", res.Source)
	}
	if res.SketchRefreshed {
		t.Fatal("fresh sketch refreshed again")
	}
	if res.Latency > 5*time.Millisecond {
		t.Fatalf("device hit latency %v too high", res.Latency)
	}
	st := p.Stats()
	if st.DeviceHits != 1 || st.CDNHits != 1 || st.Loads != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLoadPersonalizesBlocksOnDevice(t *testing.T) {
	u := loggedInUser()
	u.AddToCart("p1", 2)
	p, _, _ := newTestProxy(t, u)
	res, err := p.Load(context.Background(), "/")
	if err != nil {
		t.Fatal(err)
	}
	body := string(res.Body)
	if !strings.Contains(body, "Welcome back, Ada!") {
		t.Fatalf("greeting not personalized: %s", body)
	}
	if !strings.Contains(body, "2 items") {
		t.Fatalf("cart not personalized: %s", body)
	}
	if strings.Contains(body, "<!--block:") {
		t.Fatalf("placeholder survived: %s", body)
	}
	if res.BlocksPersonalized != 2 {
		t.Fatalf("blocks = %d", res.BlocksPersonalized)
	}
}

func TestLoadWithoutConsentRendersAnonymous(t *testing.T) {
	u := loggedInUser()
	u.ConsentPersonalization = false
	p, _, _ := newTestProxy(t, u)
	res, _ := p.Load(context.Background(), "/")
	body := string(res.Body)
	if strings.Contains(body, "Ada") {
		t.Fatalf("non-consented user personalized: %s", body)
	}
	if !strings.Contains(body, "Welcome!") {
		t.Fatalf("anonymous fragment missing: %s", body)
	}
}

func TestLoadAnonymousVisitor(t *testing.T) {
	p, _, _ := newTestProxy(t, nil)
	res, err := p.Load(context.Background(), "/")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(res.Body), "Welcome!") {
		t.Fatal("anonymous visitor body wrong")
	}
}

func TestConsentLedgerOverridesUserFlag(t *testing.T) {
	u := loggedInUser() // flag says consented...
	ledger := gdpr.NewConsentLedger()
	clk := clock.NewSimulated(time.Time{})
	tr := &fakeTransport{
		clk:       clk,
		sketchSrv: cachesketch.NewServer(cachesketch.ServerConfig{Clock: clk}),
		pages:     make(map[string]cache.Entry),
		fetchSrc:  SourceCDN,
	}
	body := []byte(origin.BlockPlaceholder("greeting"))
	e := cache.TTLEntry(clk, "/", body, 1, time.Hour)
	e.Metadata = BlocksMetadata([]string{"greeting"})
	tr.pages["/"] = e
	p := New(Config{User: u, Region: netsim.EU, Clock: clk, Consent: ledger}, tr)

	res, _ := p.Load(context.Background(), "/")
	if strings.Contains(string(res.Body), "Ada") {
		t.Fatal("ledger denial ignored")
	}
	ledger.Grant(u.ID, gdpr.PurposePersonalization, clk.Now())
	res, _ = p.Load(context.Background(), "/")
	if !strings.Contains(string(res.Body), "Ada") {
		t.Fatal("ledger grant ignored")
	}
}

func TestOriginBlocksFetchedOverFirstPartyChannel(t *testing.T) {
	u := loggedInUser()
	p, tr, _ := newTestProxy(t, u)
	p.cfg.OriginBlocks = map[string]bool{"cart": true}
	res, err := p.Load(context.Background(), "/")
	if err != nil {
		t.Fatal(err)
	}
	if tr.blockCalls != 1 || len(tr.lastBlocks) != 1 || tr.lastBlocks[0] != "cart" {
		t.Fatalf("origin block fetch: calls=%d names=%v", tr.blockCalls, tr.lastBlocks)
	}
	if tr.lastUser != u {
		t.Fatal("user not passed over first-party channel")
	}
	if !strings.Contains(string(res.Body), "<origin:cart>") {
		t.Fatalf("origin fragment not assembled: %s", res.Body)
	}
	// Greeting still rendered locally.
	if !strings.Contains(string(res.Body), "Ada") {
		t.Fatal("local block lost")
	}
	st := p.Stats()
	if st.BlocksOrigin != 1 || st.BlocksLocal != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOriginBlocksSkippedWithoutConsent(t *testing.T) {
	u := loggedInUser()
	u.ConsentPersonalization = false
	p, tr, _ := newTestProxy(t, u)
	p.cfg.OriginBlocks = map[string]bool{"cart": true}
	_, _ = p.Load(context.Background(), "/")
	if tr.blockCalls != 0 {
		t.Fatal("origin blocks fetched without consent")
	}
}

func TestNoPIICrossesCDNBoundary(t *testing.T) {
	u := loggedInUser()
	u.AddToCart("p1", 5)
	p, _, clk := newTestProxy(t, u)
	for i := 0; i < 20; i++ {
		_, _ = p.Load(context.Background(), "/")
		clk.Advance(10 * time.Second)
	}
	auditor := p.cfg.Auditor
	if !auditor.Compliant() {
		t.Fatalf("PII leaked to CDN:\n%s", auditor)
	}
	r := auditor.Report(gdpr.BoundaryCDN)
	if r.Requests == 0 {
		t.Fatal("no CDN flows audited")
	}
}

func TestSketchGovernsDeviceCache(t *testing.T) {
	p, tr, clk := newTestProxy(t, nil)
	_, _ = p.Load(context.Background(), "/") // cold: caches shell v1

	// Origin writes the page; server sketch flags it.
	tr.sketchSrv.ReportWrite("/")
	e := tr.pages["/"]
	e.Version = 2
	tr.pages["/"] = e

	// Within Δ the device still serves v1 (bounded staleness)...
	res, _ := p.Load(context.Background(), "/")
	if res.Source != SourceDevice || res.Version != 1 {
		t.Fatalf("within Δ: source=%v version=%d", res.Source, res.Version)
	}
	// ...after Δ the refreshed sketch forces revalidation to v2.
	clk.Advance(31 * time.Second)
	res, _ = p.Load(context.Background(), "/")
	if !res.SketchRefreshed || !res.Revalidated {
		t.Fatalf("post-Δ load: %+v", res)
	}
	if res.Version != 2 {
		t.Fatalf("served version = %d, want 2", res.Version)
	}
	if p.Stats().Revalidations != 1 {
		t.Fatalf("revalidations = %d", p.Stats().Revalidations)
	}
}

func TestLoadPlainPageNoBlocks(t *testing.T) {
	p, _, _ := newTestProxy(t, loggedInUser())
	res, err := p.Load(context.Background(), "/plain")
	if err != nil {
		t.Fatal(err)
	}
	if res.BlocksPersonalized != 0 {
		t.Fatalf("blocks = %d", res.BlocksPersonalized)
	}
	if string(res.Body) != "<html>no blocks</html>" {
		t.Fatalf("body = %s", res.Body)
	}
}

func TestLoadFetchError(t *testing.T) {
	p, tr, _ := newTestProxy(t, nil)
	tr.fetchErr = errors.New("edge down")
	if _, err := p.Load(context.Background(), "/"); err == nil {
		t.Fatal("fetch error swallowed")
	}
}

func TestSourceString(t *testing.T) {
	if SourceDevice.String() != "device" || SourceCDN.String() != "cdn" ||
		SourceOrigin.String() != "origin" || Source(9).String() != "unknown" {
		t.Fatal("names wrong")
	}
}

func TestBlocksMetadata(t *testing.T) {
	if BlocksMetadata(nil) != nil {
		t.Fatal("empty metadata not nil")
	}
	m := BlocksMetadata([]string{"a", "b"})
	if m["blocks"] != "a,b" {
		t.Fatalf("metadata = %v", m)
	}
}

func TestUnknownLocalBlockRendersEmpty(t *testing.T) {
	p, tr, _ := newTestProxy(t, loggedInUser())
	body := []byte("x" + origin.BlockPlaceholder("mystery") + "y")
	e := cache.TTLEntry(tr.clk, "/m", body, 1, time.Hour)
	e.Metadata = BlocksMetadata([]string{"mystery"})
	tr.pages["/m"] = e
	res, err := p.Load(context.Background(), "/m")
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Body) != "xy" {
		t.Fatalf("body = %q", res.Body)
	}
}
