// Package httpclient implements the client proxy's Transport over real
// HTTP against the endpoints served by internal/httpapi. Together with
// cmd/speedkit-server it closes the loop: the same proxy.Proxy that runs
// in-process inside the simulator can drive the protocol across an actual
// network — binary sketch downloads, ETag-conditional page fetches, the
// first-party blocks API, and offline detection on connection failure.
//
// Latencies reported through this transport are measured wall-clock
// round-trip times, not simulated ones.
package httpclient

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"speedkit/internal/bloom"
	"speedkit/internal/cache"
	"speedkit/internal/cachesketch"
	"speedkit/internal/clock"
	"speedkit/internal/netsim"
	"speedkit/internal/proxy"
	"speedkit/internal/session"
)

// Transport talks to a Speed Kit HTTP API.
type Transport struct {
	base string
	hc   *http.Client
	clk  clock.Clock
	// generation tracks sketch generations for Install ordering when the
	// server omits the header.
	generation uint64
}

// New creates a transport for the API at base (e.g. "http://host:8080").
// A nil client uses a default with a 10 s timeout.
func New(base string, hc *http.Client) *Transport {
	if hc == nil {
		hc = &http.Client{Timeout: 10 * time.Second}
	}
	return &Transport{
		base: strings.TrimRight(base, "/"),
		hc:   hc,
		clk:  clock.System,
	}
}

// asOffline maps connection-level failures to proxy.ErrOffline so the
// proxy's offline mode engages; application-level errors pass through.
func asOffline(err error) error {
	var netErr net.Error
	if errors.As(err, &netErr) || errors.Is(err, io.EOF) {
		return fmt.Errorf("%w: %v", proxy.ErrOffline, err)
	}
	var opErr *net.OpError
	if errors.As(err, &opErr) {
		return fmt.Errorf("%w: %v", proxy.ErrOffline, err)
	}
	// url.Error wraps transport failures (connection refused, DNS, ...).
	var urlErr *url.Error
	if errors.As(err, &urlErr) {
		return fmt.Errorf("%w: %v", proxy.ErrOffline, err)
	}
	return err
}

// FetchSketch implements proxy.Transport.
func (t *Transport) FetchSketch(netsim.Region) (*cachesketch.Snapshot, time.Duration) {
	start := t.clk.Now()
	resp, err := t.hc.Get(t.base + "/sketch")
	if err != nil {
		return nil, 0 // proxy degrades to direct fetches
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, t.clk.Now().Sub(start)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, t.clk.Now().Sub(start)
	}
	var f bloom.Filter
	if err := f.UnmarshalBinary(data); err != nil {
		return nil, t.clk.Now().Sub(start)
	}
	gen, _ := strconv.ParseUint(resp.Header.Get("X-Sketch-Generation"), 10, 64)
	if gen == 0 {
		t.generation++
		gen = t.generation
	}
	// TakenAt uses the client clock at receive time: conservative within
	// one transfer time, which only shortens the effective Δ slightly.
	return &cachesketch.Snapshot{
		Filter:     &f,
		Generation: gen,
		TakenAt:    t.clk.Now(),
	}, t.clk.Now().Sub(start)
}

// parseMaxAge extracts max-age seconds from a Cache-Control header.
func parseMaxAge(cc string) (time.Duration, bool) {
	for _, part := range strings.Split(cc, ",") {
		part = strings.TrimSpace(part)
		if rest, ok := strings.CutPrefix(part, "max-age="); ok {
			secs, err := strconv.Atoi(rest)
			if err != nil || secs < 0 {
				return 0, false
			}
			return time.Duration(secs) * time.Second, true
		}
	}
	return 0, false
}

// parseVersionETag extracts the version from the server's `"v<n>"` ETags.
func parseVersionETag(tag string) uint64 {
	tag = strings.Trim(strings.TrimPrefix(strings.TrimSpace(tag), "W/"), `"`)
	if !strings.HasPrefix(tag, "v") {
		return 0
	}
	v, _ := strconv.ParseUint(tag[1:], 10, 64)
	return v
}

// entryFromResponse builds a cache entry from a 200 page response.
func (t *Transport) entryFromResponse(path string, resp *http.Response, body []byte) cache.Entry {
	now := t.clk.Now()
	e := cache.Entry{
		Key:      path,
		Body:     body,
		Version:  parseVersionETag(resp.Header.Get("ETag")),
		StoredAt: now,
	}
	if maxAge, ok := parseMaxAge(resp.Header.Get("Cache-Control")); ok && maxAge > 0 {
		e.ExpiresAt = now.Add(maxAge)
	}
	if blocks := resp.Header.Get("X-Blocks"); blocks != "" {
		e.Metadata = map[string]string{"blocks": blocks}
	}
	return e
}

func sourceFromHeader(h string) proxy.Source {
	switch h {
	case "cdn":
		return proxy.SourceCDN
	case "device":
		return proxy.SourceDevice
	default:
		return proxy.SourceOrigin
	}
}

// Fetch implements proxy.Transport.
func (t *Transport) Fetch(_ netsim.Region, path string) (cache.Entry, time.Duration, proxy.Source, error) {
	start := t.clk.Now()
	resp, err := t.hc.Get(t.base + "/page?path=" + url.QueryEscape(path))
	if err != nil {
		return cache.Entry{}, 0, 0, asOffline(err)
	}
	defer resp.Body.Close()
	lat := t.clk.Now().Sub(start)
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return cache.Entry{}, lat, 0, fmt.Errorf("httpclient: fetch %s: %d %s",
			path, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return cache.Entry{}, lat, 0, asOffline(err)
	}
	lat = t.clk.Now().Sub(start)
	return t.entryFromResponse(path, resp, body), lat, sourceFromHeader(resp.Header.Get("X-Served-By")), nil
}

// Revalidate implements proxy.Transport via If-None-Match.
func (t *Transport) Revalidate(region netsim.Region, path string, knownVersion uint64) (proxy.RevalidationResult, error) {
	start := t.clk.Now()
	req, err := http.NewRequest(http.MethodGet, t.base+"/page?path="+url.QueryEscape(path), nil)
	if err != nil {
		return proxy.RevalidationResult{}, err
	}
	req.Header.Set("If-None-Match", fmt.Sprintf("%q", "v"+strconv.FormatUint(knownVersion, 10)))
	resp, err := t.hc.Do(req)
	if err != nil {
		return proxy.RevalidationResult{}, asOffline(err)
	}
	defer resp.Body.Close()
	lat := t.clk.Now().Sub(start)

	switch resp.StatusCode {
	case http.StatusNotModified:
		e := cache.Entry{Key: path, Version: knownVersion, StoredAt: t.clk.Now()}
		if maxAge, ok := parseMaxAge(resp.Header.Get("Cache-Control")); ok && maxAge > 0 {
			e.ExpiresAt = t.clk.Now().Add(maxAge)
		}
		return proxy.RevalidationResult{
			NotModified: true, Entry: e, Latency: lat, Source: proxy.SourceOrigin,
		}, nil
	case http.StatusOK:
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return proxy.RevalidationResult{}, asOffline(err)
		}
		return proxy.RevalidationResult{
			Entry:   t.entryFromResponse(path, resp, body),
			Latency: t.clk.Now().Sub(start),
			Source:  sourceFromHeader(resp.Header.Get("X-Served-By")),
		}, nil
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return proxy.RevalidationResult{}, fmt.Errorf("httpclient: revalidate %s: %d %s",
			path, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
}

// FetchBlocks implements proxy.Transport over the first-party API. Only
// the user ID crosses the wire — the server resolves the session.
func (t *Transport) FetchBlocks(_ netsim.Region, names []string, u *session.User) (map[string][]byte, time.Duration) {
	start := t.clk.Now()
	q := url.Values{"names": {strings.Join(names, ",")}}
	if u != nil {
		q.Set("user", u.ID)
	}
	resp, err := t.hc.Get(t.base + "/blocks?" + q.Encode())
	if err != nil {
		return nil, 0
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, t.clk.Now().Sub(start)
	}
	var decoded map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		return nil, t.clk.Now().Sub(start)
	}
	out := make(map[string][]byte, len(decoded))
	for k, v := range decoded {
		out[k] = []byte(v)
	}
	return out, t.clk.Now().Sub(start)
}

var _ proxy.Transport = (*Transport)(nil)
