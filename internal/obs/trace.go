package obs

import (
	"context"
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"

	"speedkit/internal/clock"
	"speedkit/internal/tracectx"
)

// Span is one timed step inside a trace: a sketch fetch, the shell
// fetch, the personalized-block round trip, a CDN purge. Durations are
// whatever the injected clock measures — simulated latency in the
// experiment harness, wall time on a real server.
type Span struct {
	// Name identifies the step ("sketch.fetch", "shell.fetch",
	// "blocks.fetch", "cdn.purge", ...).
	Name string `json:"name"`
	// Tier is the infrastructure layer the step ran against:
	// "device", "cdn", "origin", or "pipeline".
	Tier string `json:"tier"`
	// Duration is the step's cost in nanoseconds.
	Duration time.Duration `json:"duration_ns"`
}

// Trace is one sampled request (a page load, an HTTP page fetch, or an
// invalidation-pipeline run). A nil *Trace is the unsampled case: every
// method is a nil-safe no-op, so instrumented code records
// unconditionally and pays nothing when its request was not drawn.
//
// A trace is owned by the single request goroutine until Finish hands it
// to the ring buffer, after which it must not be mutated.
//
// Traces deliberately have nowhere to put identity: no user field, no
// session, no cookie. Paths and serve sources are anonymous under the
// gdpr field classification, which is what makes /debug/traces safe to
// expose.
type Trace struct {
	// ID orders traces; it is the sampling sequence number that drew them.
	ID uint64 `json:"id"`
	// TraceID is the 128-bit causal identity shared by every span of the
	// request, across processes: the device's page-load trace, the
	// server's http.page trace, and the invalidation trace a write fans
	// out into all carry the same TraceID when stitched over a real HTTP
	// hop via the W3C traceparent header.
	TraceID tracectx.TraceID `json:"trace_id"`
	// SpanID is this trace's own 64-bit span identity — what a downstream
	// process sees as its parent when the context propagates.
	SpanID tracectx.SpanID `json:"span_id"`
	// ParentSpanID is the propagated parent's span ID; zero for a root.
	ParentSpanID tracectx.SpanID `json:"parent_span_id"`
	// Remote marks a trace whose identity was adopted from a propagated
	// context rather than drawn locally.
	Remote bool `json:"remote,omitempty"`
	// Kind is the request class: "page_load", "http.page", "invalidation".
	Kind string `json:"kind"`
	// Path is the (anonymous) resource the request was for.
	Path string `json:"path"`
	// Start is the clock reading when the trace began.
	Start time.Time `json:"start"`
	// Source is the tier that served the shell ("device", "cdn",
	// "origin"), empty for non-serving traces.
	Source string `json:"source,omitempty"`
	// SketchGeneration is the generation of the sketch snapshot consulted
	// at decision time.
	SketchGeneration uint64 `json:"sketch_generation"`
	// SketchAge is how old that snapshot was at decision time.
	SketchAge time.Duration `json:"sketch_age_ns"`
	// DeltaBudget is the fraction of the Δ staleness budget the snapshot
	// had consumed at decision time (SketchAge/Δ; 0 when Δ is unknown).
	DeltaBudget float64 `json:"delta_budget"`
	// SketchRefreshed, Revalidated, Offline mirror the per-load protocol
	// outcomes.
	SketchRefreshed bool `json:"sketch_refreshed,omitempty"`
	Revalidated     bool `json:"revalidated,omitempty"`
	Offline         bool `json:"offline,omitempty"`
	// Degraded names the first degradation-ladder rung this load took
	// (empty for full-protocol loads).
	Degraded string `json:"degraded,omitempty"`
	// Blocks is the number of dynamic blocks personalized for the load;
	// BlockLatency is the cost of producing them (block-level
	// personalization latency).
	Blocks       int           `json:"blocks,omitempty"`
	BlockLatency time.Duration `json:"block_latency_ns,omitempty"`
	// Total is the end-to-end request cost.
	Total time.Duration `json:"total_ns"`
	// Spans are the timed steps, in recording order.
	Spans []Span `json:"spans,omitempty"`
	// Events are point annotations in recording order: a retry attempt,
	// a circuit-breaker open, a degradation decision. They carry no
	// timestamp of their own — ordering is the information — which keeps
	// them deterministic under the simulated clock.
	Events []Event `json:"events,omitempty"`
}

// Event is a point annotation on a trace: something that happened
// between spans, with a short machine-readable detail (a retry count, a
// degradation reason, a breaker name). Details are anonymous protocol
// state, never identity — the obslabels analyzer polices the call sites.
type Event struct {
	Name   string `json:"name"`
	Detail string `json:"detail,omitempty"`
}

// SpanContext returns the propagated form of this trace's identity.
// A nil (unsampled) trace returns the zero, invalid SpanContext —
// callers on that path send no header at all.
func (tr *Trace) SpanContext() tracectx.SpanContext {
	if tr == nil {
		return tracectx.SpanContext{}
	}
	return tracectx.SpanContext{TraceID: tr.TraceID, SpanID: tr.SpanID, Sampled: true}
}

// AddEvent appends a point annotation. No-op on a nil trace.
func (tr *Trace) AddEvent(name, detail string) {
	if tr == nil {
		return
	}
	tr.Events = append(tr.Events, Event{Name: name, Detail: detail})
}

// AddSpan appends a timed step. No-op on a nil (unsampled) trace.
func (tr *Trace) AddSpan(name, tier string, d time.Duration) {
	if tr == nil {
		return
	}
	tr.Spans = append(tr.Spans, Span{Name: name, Tier: tier, Duration: d})
}

// SetSource records the serving tier.
func (tr *Trace) SetSource(source string) {
	if tr == nil {
		return
	}
	tr.Source = source
}

// SetSketch records the sketch snapshot state consulted at decision
// time: its generation, its age, and the Δ it is budgeted against.
func (tr *Trace) SetSketch(generation uint64, age, delta time.Duration) {
	if tr == nil {
		return
	}
	tr.SketchGeneration = generation
	tr.SketchAge = age
	if delta > 0 {
		tr.DeltaBudget = float64(age) / float64(delta)
	}
}

// SetBlocks records the personalization outcome.
func (tr *Trace) SetBlocks(n int, latency time.Duration) {
	if tr == nil {
		return
	}
	tr.Blocks = n
	tr.BlockLatency = latency
}

// SetTotal records the end-to-end cost.
func (tr *Trace) SetTotal(d time.Duration) {
	if tr == nil {
		return
	}
	tr.Total = d
}

// MarkSketchRefreshed notes that the load refreshed the sketch.
func (tr *Trace) MarkSketchRefreshed() {
	if tr == nil {
		return
	}
	tr.SketchRefreshed = true
}

// MarkRevalidated notes that the sketch forced a revalidation.
func (tr *Trace) MarkRevalidated() {
	if tr == nil {
		return
	}
	tr.Revalidated = true
}

// MarkOffline notes that the load was served from the device cache with
// the network unreachable.
func (tr *Trace) MarkOffline() {
	if tr == nil {
		return
	}
	tr.Offline = true
}

// MarkDegraded records the degradation reason; the first reason set
// wins, matching the PageLoad semantics.
func (tr *Trace) MarkDegraded(reason string) {
	if tr == nil || tr.Degraded != "" {
		return
	}
	tr.Degraded = reason
}

// TracerStats counts tracer activity.
type TracerStats struct {
	// Started counts requests that consulted the sampler while sampling
	// was enabled.
	Started uint64
	// Sampled counts requests that were drawn and allocated a Trace.
	Sampled uint64
}

// Tracer draws a deterministic 1-in-N sample of requests and keeps the
// most recent finished traces in a fixed ring buffer. A nil *Tracer is
// fully disabled: Start returns nil at the cost of a nil check, and every
// other method is a no-op, so components take a *Tracer without caring
// whether tracing is deployed.
//
// Start on a live tracer is one atomic add and a modulo; the unsampled
// outcome allocates nothing. The AllocsPerRun tests pin this.
type Tracer struct {
	clk clock.Clock
	// sampleEvery is the sampling knob: 0 disables, 1 traces every
	// request, N traces one in N. Mutable at runtime via SetSampleEvery.
	sampleEvery atomic.Uint64
	seq         atomic.Uint64
	sampled     atomic.Uint64

	// ids draws trace/span identity on the sampled path only, guarded by
	// idMu (splitmix64 state is not concurrency-safe, and the sampled
	// path already allocates, so a mutex costs nothing that matters).
	idMu sync.Mutex
	ids  *tracectx.IDSource

	mu   sync.Mutex
	ring []*Trace // guarded by mu
	next int      // guarded by mu
}

// NewTracer creates a tracer reading time from clk (default the coarse
// system clock), sampling one request in sampleEvery (0 disables), and
// retaining the last ringSize finished traces (default 256). Trace and
// span IDs come from a default-seeded deterministic stream; processes
// that need distinct or replayable ID streams use NewTracerSeeded.
func NewTracer(clk clock.Clock, sampleEvery int, ringSize int) *Tracer {
	return NewTracerSeeded(clk, sampleEvery, ringSize, 1)
}

// NewTracerSeeded is NewTracer with an explicit identity seed. Same
// seed, same ID sequence — golden trace exports depend on it. Two
// cooperating processes (device and server) seed differently so locally
// rooted traces never collide.
func NewTracerSeeded(clk clock.Clock, sampleEvery int, ringSize int, seed int64) *Tracer {
	if clk == nil {
		clk = clock.CoarseSystem
	}
	if ringSize <= 0 {
		ringSize = 256
	}
	t := &Tracer{
		clk:  clk,
		ids:  tracectx.NewIDSource(seed),
		ring: make([]*Trace, 0, ringSize),
	}
	if sampleEvery > 0 {
		t.sampleEvery.Store(uint64(sampleEvery))
	}
	return t
}

// SetSampleEvery changes the sampling rate: 0 disables, 1 traces
// everything, N traces one request in N. Safe to call while serving.
func (t *Tracer) SetSampleEvery(n int) {
	if t == nil {
		return
	}
	if n < 0 {
		n = 0
	}
	t.sampleEvery.Store(uint64(n))
}

// SampleEvery returns the current sampling knob (0 = disabled).
func (t *Tracer) SampleEvery() int {
	if t == nil {
		return 0
	}
	return int(t.sampleEvery.Load())
}

// Start draws the sampling decision for one request. It returns nil —
// the free, allocation-less outcome — when the tracer is nil, disabled,
// or the request was not drawn; otherwise it allocates and stamps a
// Trace the caller populates and hands to Finish.
func (t *Tracer) Start(kind, path string) *Trace {
	if t == nil {
		return nil
	}
	n := t.sampleEvery.Load()
	if n == 0 {
		return nil
	}
	id := t.seq.Add(1)
	if id%n != 0 {
		return nil
	}
	t.sampled.Add(1)
	tr := &Trace{ID: id, Kind: kind, Path: path, Start: t.clk.Now()}
	t.idMu.Lock()
	tr.TraceID = t.ids.TraceID()
	tr.SpanID = t.ids.SpanID()
	t.idMu.Unlock()
	return tr
}

// StartRemote starts a trace that joins (or declines to join) a
// propagated span context, honoring the head-based sampling decision in
// both directions: a valid sampled parent forces recording under the
// parent's trace ID regardless of the local sampling knob, and a valid
// unsampled parent forces nil, so one page load is traced end-to-end or
// not at all. An invalid parent — absent, malformed, or truncated
// header, already collapsed to the zero SpanContext by
// tracectx.ParseTraceparent — falls back to a fresh local root via
// Start: never a panic, never an inherited sampling bit.
//
// The unsampled-parent outcome is one branch and no allocation; the
// alloc gates pin it.
func (t *Tracer) StartRemote(kind, path string, parent tracectx.SpanContext) *Trace {
	if t == nil {
		return nil
	}
	if !parent.Valid() {
		return t.Start(kind, path)
	}
	if !parent.Sampled {
		t.seq.Add(1)
		return nil
	}
	t.seq.Add(1)
	tr := &Trace{
		ID:           t.sampled.Add(1),
		Kind:         kind,
		Path:         path,
		Start:        t.clk.Now(),
		TraceID:      parent.TraceID,
		ParentSpanID: parent.SpanID,
		Remote:       true,
	}
	t.idMu.Lock()
	tr.SpanID = t.ids.SpanID()
	t.idMu.Unlock()
	return tr
}

// Finish publishes a populated trace into the ring buffer. The trace
// must not be mutated afterwards. No-op when either side is nil.
func (t *Tracer) Finish(tr *Trace) {
	if t == nil || tr == nil {
		return
	}
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, tr)
	} else {
		t.ring[t.next] = tr
	}
	t.next = (t.next + 1) % cap(t.ring)
	t.mu.Unlock()
}

// Recent returns up to n finished traces, newest first (all retained
// traces for n <= 0). The slice is a fresh copy; the traces themselves
// are shared and immutable once finished.
func (t *Tracer) Recent(n int) []*Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	total := len(t.ring)
	if n <= 0 || n > total {
		n = total
	}
	out := make([]*Trace, 0, n)
	// t.next is the slot the *next* finish will take, so the newest
	// finished trace sits just behind it.
	for i := 1; i <= n; i++ {
		idx := t.next - i
		if idx < 0 {
			idx += total
		}
		out = append(out, t.ring[idx])
	}
	return out
}

// ByTraceID returns every retained trace with the given causal
// identity, oldest first. One process can legitimately hold several:
// the server's http.page trace and the invalidation trace a write
// caused share a trace ID by design. Empty result for the zero ID.
func (t *Tracer) ByTraceID(id tracectx.TraceID) []*Trace {
	if t == nil || id.IsZero() {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []*Trace
	total := len(t.ring)
	// Walk oldest→newest: the slot at t.next is the oldest once the ring
	// has wrapped; before wrapping the ring is already in order.
	start := 0
	if total == cap(t.ring) {
		start = t.next
	}
	for i := 0; i < total; i++ {
		tr := t.ring[(start+i)%total]
		if tr.TraceID == id {
			out = append(out, tr)
		}
	}
	return out
}

// Stats returns a copy of the tracer counters.
func (t *Tracer) Stats() TracerStats {
	if t == nil {
		return TracerStats{}
	}
	return TracerStats{Started: t.seq.Load(), Sampled: t.sampled.Load()}
}

// ExportTraces renders traces as indented JSON, byte-deterministically:
// struct-field order is fixed, IDs serialize as lowercase hex, and
// under a simulated clock the timestamps replay exactly. The golden
// stitching tests compare this output verbatim.
func ExportTraces(traces []*Trace) ([]byte, error) {
	if traces == nil {
		traces = []*Trace{}
	}
	return json.MarshalIndent(traces, "", "  ")
}

// traceCtxKey carries the active *Trace through a request's context so
// lower layers (transport, core service, resilience retries) can attach
// spans and events without new parameters on every signature.
type traceCtxKey struct{}

// ContextWithTrace returns ctx carrying tr as the active trace, both as
// the *Trace itself (for span/event attachment below this layer) and as
// its tracectx.SpanContext (so packages below the GDPR boundary — the
// structured logger above all — can stamp trace identity without
// importing obs). A nil trace (the unsampled case) stores nothing,
// keeping that path free.
func ContextWithTrace(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	ctx = context.WithValue(ctx, traceCtxKey{}, tr)
	return tracectx.ContextWithSpan(ctx, tr.SpanContext())
}

// TraceFromContext returns the active trace, or nil — and nil is fine:
// every *Trace method is a nil-safe no-op, so callers chain directly,
// e.g. obs.TraceFromContext(ctx).AddSpan(...).
func TraceFromContext(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return tr
}
