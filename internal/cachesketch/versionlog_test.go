package cachesketch

import (
	"testing"
	"time"
)

func TestVersionLogCurrentVersion(t *testing.T) {
	l := NewVersionLog()
	base := time.Unix(0, 0)
	l.RecordWrite("k", 1, base)
	l.RecordWrite("k", 2, base.Add(10*time.Second))
	l.RecordWrite("k", 3, base.Add(20*time.Second))

	cases := []struct {
		at   time.Duration
		want uint64
	}{
		{-time.Second, 0},
		{0, 1},
		{5 * time.Second, 1},
		{10 * time.Second, 2},
		{15 * time.Second, 2},
		{25 * time.Second, 3},
	}
	for _, c := range cases {
		if got := l.CurrentVersion("k", base.Add(c.at)); got != c.want {
			t.Errorf("CurrentVersion(t=%v) = %d, want %d", c.at, got, c.want)
		}
	}
	if l.CurrentVersion("ghost", base) != 0 {
		t.Error("ghost key has version")
	}
}

func TestVersionLogStaleness(t *testing.T) {
	l := NewVersionLog()
	base := time.Unix(0, 0)
	l.RecordWrite("k", 1, base)
	l.RecordWrite("k", 2, base.Add(10*time.Second))

	// Reading v1 at t=15s: superseded at t=10s → 5s stale.
	if s := l.Staleness("k", 1, base.Add(15*time.Second)); s != 5*time.Second {
		t.Fatalf("staleness = %v, want 5s", s)
	}
	// Reading v1 at t=5s: still current → 0.
	if s := l.Staleness("k", 1, base.Add(5*time.Second)); s != 0 {
		t.Fatalf("staleness = %v, want 0", s)
	}
	// Reading v2 (newest) anywhere → 0.
	if s := l.Staleness("k", 2, base.Add(time.Hour)); s != 0 {
		t.Fatalf("staleness of newest = %v", s)
	}
	// Unknown version → 0 (cannot judge).
	if s := l.Staleness("k", 99, base.Add(time.Hour)); s != 0 {
		t.Fatalf("staleness of unknown = %v", s)
	}
	// Unknown key → 0.
	if s := l.Staleness("ghost", 1, base); s != 0 {
		t.Fatalf("staleness of ghost key = %v", s)
	}
}

func TestVersionLogDeltaAtomic(t *testing.T) {
	l := NewVersionLog()
	base := time.Unix(0, 0)
	l.RecordWrite("k", 1, base)
	l.RecordWrite("k", 2, base.Add(10*time.Second))

	read := base.Add(15 * time.Second) // v1 is 5s stale here
	if !l.DeltaAtomic("k", 1, read, 5*time.Second) {
		t.Fatal("5s-stale read should satisfy Δ=5s")
	}
	if l.DeltaAtomic("k", 1, read, 4*time.Second) {
		t.Fatal("5s-stale read must violate Δ=4s")
	}
}

func TestVersionLogKeys(t *testing.T) {
	l := NewVersionLog()
	l.RecordWrite("a", 1, time.Unix(0, 0))
	l.RecordWrite("b", 1, time.Unix(0, 0))
	if l.Keys() != 2 {
		t.Fatalf("keys = %d", l.Keys())
	}
}
