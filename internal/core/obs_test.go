package core

import (
	"context"
	"testing"
	"time"

	"speedkit/internal/clock"
	"speedkit/internal/netsim"
	"speedkit/internal/obs"
)

// newObservedStorefront builds a storefront with a private registry and
// an always-sample tracer, so assertions see exactly this test's events.
func newObservedStorefront(t *testing.T) (*Service, *obs.Registry, *obs.Tracer) {
	t.Helper()
	clk := clock.NewSimulated(time.Time{})
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(clk, 1, 64)
	svc, err := NewStorefront(StorefrontConfig{
		Config: Config{
			Clock: clk, Seed: 1, Delta: 30 * time.Second,
			Obs: reg, Tracer: tracer,
		},
		Products: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc, reg, tracer
}

// counterValue reads one series out of a registry snapshot.
func counterValue(t *testing.T, reg *obs.Registry, name string, labels ...obs.Label) float64 {
	t.Helper()
	// Resolving through the registry returns the same handle the
	// instrumented code uses, so reading it observes the live value.
	return float64(reg.Counter(name, labels...).Value())
}

func TestDeviceLoadInstrumentsRegistryAndTracer(t *testing.T) {
	svc, reg, tracer := newObservedStorefront(t)
	dev := svc.NewDevice(testUser(), netsim.EU)

	if _, err := dev.Load(context.Background(), "/product/p00042"); err != nil {
		t.Fatal(err)
	}

	if got := counterValue(t, reg, "speedkit.device.loads.total", obs.L("source", "origin")); got != 1 {
		t.Fatalf("device origin loads = %v, want 1", got)
	}
	if got := counterValue(t, reg, "speedkit.service.fetch.total", obs.L("source", "origin")); got != 1 {
		t.Fatalf("service origin fetches = %v, want 1", got)
	}
	if got := counterValue(t, reg, "speedkit.device.sketch_refreshes.total"); got != 1 {
		t.Fatalf("sketch refreshes = %v, want 1 (cold client)", got)
	}

	// The cold load must have produced exactly one sampled page_load trace
	// carrying the serve source, the sketch stamp, and the span chain.
	var page *obs.Trace
	for _, tr := range tracer.Recent(16) {
		if tr.Kind == "page_load" {
			page = tr
			break
		}
	}
	if page == nil {
		t.Fatal("no page_load trace sampled")
	}
	if page.Path != "/product/p00042" || page.Source != "origin" {
		t.Fatalf("trace = %+v", page)
	}
	if !page.SketchRefreshed {
		t.Fatal("cold load should mark the sketch refresh")
	}
	if page.Blocks == 0 {
		t.Fatal("personalized load recorded no blocks")
	}
	names := map[string]bool{}
	for _, sp := range page.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"sketch.fetch", "shell.fetch", "personalize"} {
		if !names[want] {
			t.Fatalf("span %q missing from %+v", want, page.Spans)
		}
	}
	if page.Total <= 0 {
		t.Fatalf("trace total = %v", page.Total)
	}
}

func TestInvalidationPipelineTracedAndCounted(t *testing.T) {
	svc, reg, tracer := newObservedStorefront(t)
	dev := svc.NewDevice(nil, netsim.EU)

	// Cache a copy so the write has a live copy to track, then write.
	if _, err := dev.Load(context.Background(), "/product/p00007"); err != nil {
		t.Fatal(err)
	}
	if err := svc.Docs().Patch("products", "p00007", map[string]any{"price": 9.99}); err != nil {
		t.Fatal(err)
	}

	if got := counterValue(t, reg, "speedkit.invalidation.total"); got < 1 {
		t.Fatalf("invalidations = %v, want >= 1", got)
	}
	if got := counterValue(t, reg, "speedkit.cdn.purges.total"); got < 1 {
		t.Fatalf("purges = %v, want >= 1", got)
	}

	var inv *obs.Trace
	for _, tr := range tracer.Recent(64) {
		if tr.Kind == "invalidation" && tr.Path == "/product/p00007" {
			inv = tr
			break
		}
	}
	if inv == nil {
		t.Fatal("no invalidation trace for the written path")
	}
	if inv.SketchGeneration == 0 {
		t.Fatal("invalidation trace missing the post-write sketch generation")
	}
	names := map[string]bool{}
	for _, sp := range inv.Spans {
		names[sp.Name] = true
	}
	if !names["sketch.report"] || !names["cdn.purge"] {
		t.Fatalf("pipeline spans = %+v", inv.Spans)
	}
}

func TestTracingDisabledByDefault(t *testing.T) {
	svc, _ := newTestStorefront(t)
	dev := svc.NewDevice(nil, netsim.EU)
	if _, err := dev.Load(context.Background(), "/"); err != nil {
		t.Fatal(err)
	}
	if svc.Tracer() != nil {
		t.Fatal("tracer should default to nil (tracing off)")
	}
}
