// Package resilience provides the two mechanical building blocks of the
// degradation ladder: jittered exponential backoff and a small
// closed/open/half-open circuit breaker. Both are clock-driven (no real
// sleeps, no wall-clock reads) and draw randomness only from injected
// seeded sources, so every retry schedule and breaker transition is
// byte-reproducible under simulated time.
//
// Policy — which errors count as failures, what to serve while degraded
// — stays with the callers (proxy, core); this package only answers
// "how long to wait" and "is this upstream worth calling right now".
package resilience

import (
	"math/rand"
	"sync"
	"time"

	"speedkit/internal/clock"
)

// Backoff computes jittered exponential retry delays:
//
//	delay(n) = min(Base·Factor^n, Max) · (1 ± Jitter·U)
//
// where U is uniform in [0,1) from the injected rng. The zero value is
// not useful; Default() gives the canonical profile.
type Backoff struct {
	// Base is the delay before the first retry.
	Base time.Duration
	// Max caps the exponential growth (0 = uncapped).
	Max time.Duration
	// Factor multiplies the delay per attempt (values < 2 are raised
	// to 2 by Delay when nonsensical, i.e. < 1).
	Factor float64
	// Jitter is the ± fraction applied to the computed delay, in [0,1].
	// Jitter keeps synchronized clients from retrying in lockstep.
	Jitter float64
}

// Default is the canonical backoff profile: 50 ms base, doubling, 2 s
// cap, ±50% jitter.
func Default() Backoff {
	return Backoff{Base: 50 * time.Millisecond, Max: 2 * time.Second, Factor: 2, Jitter: 0.5}
}

// Delay returns the wait before retry attempt n (0-based). A nil rng
// disables jitter rather than falling back to global randomness, which
// would break reproducibility.
func (b Backoff) Delay(rng *rand.Rand, attempt int) time.Duration {
	base := b.Base
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	factor := b.Factor
	if factor < 1 {
		factor = 2
	}
	d := float64(base)
	for i := 0; i < attempt; i++ {
		d *= factor
		if b.Max > 0 && d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	if b.Max > 0 && d > float64(b.Max) {
		d = float64(b.Max)
	}
	if b.Jitter > 0 && rng != nil {
		// Spread across [1-J, 1+J); expectation stays at the unjittered
		// delay so budget math remains predictable.
		d *= 1 - b.Jitter + 2*b.Jitter*rng.Float64()
	}
	if d < 0 {
		return 0
	}
	return time.Duration(d)
}

// State is a circuit breaker state.
type State int

// Breaker states.
const (
	// Closed: calls flow normally; consecutive failures are counted.
	Closed State = iota
	// Open: calls are rejected without touching the upstream until the
	// cooldown elapses.
	Open
	// HalfOpen: one probe call is admitted; its outcome closes or
	// re-opens the circuit.
	HalfOpen
)

// String names the state.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig shapes a Breaker.
type BreakerConfig struct {
	// Clock drives the cooldown (default the system clock).
	Clock clock.Clock
	// Threshold is the consecutive-failure count that opens the
	// circuit (default 5).
	Threshold int
	// Cooldown is how long the circuit stays open before admitting a
	// half-open probe (default 15 s).
	Cooldown time.Duration
}

// BreakerStats counts breaker activity.
type BreakerStats struct {
	// Opens counts closed/half-open → open transitions.
	Opens uint64
	// Rejected counts calls refused while open.
	Rejected uint64
	// Probes counts half-open probe admissions.
	Probes uint64
}

// Breaker is a minimal consecutive-failure circuit breaker. Callers ask
// Allow before each upstream call and report Success/Failure after.
// Safe for concurrent use. A nil *Breaker is always closed: Allow
// permits everything and outcomes are dropped.
type Breaker struct {
	clk       clock.Clock
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	state    State        // guarded by mu
	failures int          // guarded by mu
	openedAt time.Time    // guarded by mu
	probing  bool         // guarded by mu
	stats    BreakerStats // guarded by mu
}

// NewBreaker builds a breaker from cfg, applying defaults for zero
// fields.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Clock == nil {
		cfg.Clock = clock.System
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = 5
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 15 * time.Second
	}
	return &Breaker{clk: cfg.Clock, threshold: cfg.Threshold, cooldown: cfg.Cooldown}
}

// Allow reports whether a call may proceed. While open it starts
// admitting a single half-open probe once the cooldown has elapsed;
// concurrent callers during the probe are rejected until the probe
// reports its outcome.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if clock.Since(b.clk, b.openedAt) < b.cooldown {
			b.stats.Rejected++
			return false
		}
		b.state = HalfOpen
		b.probing = true
		b.stats.Probes++
		return true
	case HalfOpen:
		if b.probing {
			b.stats.Rejected++
			return false
		}
		b.probing = true
		b.stats.Probes++
		return true
	}
	return true
}

// Success reports a successful call: it closes the circuit and clears
// the failure count.
func (b *Breaker) Success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.state = Closed
	b.failures = 0
	b.probing = false
	b.mu.Unlock()
}

// Failure reports a failed call. In the closed state it opens the
// circuit after Threshold consecutive failures; a failed half-open
// probe re-opens immediately.
func (b *Breaker) Failure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.failures++
		if b.failures >= b.threshold {
			b.open()
		}
	case HalfOpen:
		b.probing = false
		b.open()
	case Open:
		// A straggler from before the trip; the circuit is already open.
	}
}

// open must hold b.mu.
func (b *Breaker) open() {
	b.state = Open
	b.openedAt = b.clk.Now()
	b.failures = 0
	b.stats.Opens++
}

// State returns the current state, surfacing open → half-open
// eligibility without admitting a probe.
func (b *Breaker) State() State {
	if b == nil {
		return Closed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open && clock.Since(b.clk, b.openedAt) >= b.cooldown {
		return HalfOpen
	}
	return b.state
}

// Stats returns a snapshot of the breaker counters.
func (b *Breaker) Stats() BreakerStats {
	if b == nil {
		return BreakerStats{}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}
