package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"speedkit/internal/cachesketch"
	"speedkit/internal/clock"
	"speedkit/internal/faults"
	"speedkit/internal/ttl"
)

// harness bundles a store with the sketch/estimator pair it persists.
type harness struct {
	dir    string
	sim    *clock.Simulated
	store  *Store
	sketch *cachesketch.Server
	est    *ttl.Estimator
}

func newHarness(t *testing.T, dir string, inj *faults.Injector) *harness {
	t.Helper()
	h := &harness{dir: dir, sim: clock.NewSimulated(time.Time{})}
	h.store = New(Config{
		Dir:          dir,
		Clock:        h.sim,
		Faults:       inj,
		ColdWindow:   time.Minute,
		BlindHorizon: 10 * time.Minute,
	})
	h.sketch = cachesketch.NewServer(cachesketch.ServerConfig{Clock: h.sim, Journal: h.store})
	h.est = ttl.NewEstimator(ttl.Config{Clock: h.sim})
	return h
}

func (h *harness) recover(t *testing.T) RecoveryInfo {
	t.Helper()
	info, err := h.store.Recover(h.sketch, h.est)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return info
}

// populate reports a cached read + write for n keys so each is tracked.
func (h *harness) populate(n int) {
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("/doc/%03d", i)
		h.sketch.ReportCachedRead(key, h.sim.Now().Add(time.Hour))
		h.sketch.ReportWrite(key)
	}
}

func TestFreshThenCleanRestartIsWarm(t *testing.T) {
	dir := t.TempDir()
	h := newHarness(t, dir, nil)
	if info := h.recover(t); info.Mode != Fresh || info.Saturated {
		t.Fatalf("fresh dir: %+v", info)
	}
	h.populate(20)
	h.store.JournalInvalidation(7)
	genBefore := h.sketch.Generation()
	if err := h.store.Close(); err != nil {
		t.Fatal(err)
	}

	h2 := newHarness(t, dir, nil)
	info := h2.recover(t)
	if info.Mode != Replay {
		t.Fatalf("Mode = %v, want Replay", info.Mode)
	}
	if info.Saturated {
		t.Fatal("clean shutdown must not saturate")
	}
	if info.Watermark != 7 {
		t.Fatalf("Watermark = %d, want 7", info.Watermark)
	}
	if got := h2.sketch.Generation(); got != genBefore {
		t.Fatalf("generation = %d, want %d", got, genBefore)
	}
	for i := 0; i < 20; i++ {
		if !h2.sketch.Contains(fmt.Sprintf("/doc/%03d", i)) {
			t.Fatalf("key %d lost across clean restart", i)
		}
	}
	if h2.sketch.ColdStartActive() {
		t.Fatal("cold start active after clean restart")
	}
}

func TestSnapshotReplayAndPrune(t *testing.T) {
	dir := t.TempDir()
	h := newHarness(t, dir, nil)
	h.recover(t)
	h.populate(30)
	h.store.JournalInvalidation(3)
	if err := h.store.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot tail.
	h.sketch.ReportCachedRead("/tail/a", h.sim.Now().Add(time.Hour))
	h.sketch.ReportWrite("/tail/a")
	h.store.JournalInvalidation(9)
	if err := h.store.Close(); err != nil {
		t.Fatal(err)
	}

	h2 := newHarness(t, dir, nil)
	info := h2.recover(t)
	if info.Mode != Replay || info.Saturated {
		t.Fatalf("info = %+v, want clean replay over snapshot", info)
	}
	if info.SnapshotLSN == 0 {
		t.Fatal("snapshot not found")
	}
	if info.Watermark != 9 {
		t.Fatalf("Watermark = %d, want 9", info.Watermark)
	}
	if !h2.sketch.Contains("/tail/a") || !h2.sketch.Contains("/doc/000") {
		t.Fatal("state lost across snapshot+replay restart")
	}
	if h2.sketch.Generation() != h.sketch.Generation() {
		t.Fatalf("generation %d != %d", h2.sketch.Generation(), h.sketch.Generation())
	}
}

func TestUncleanShutdownSaturates(t *testing.T) {
	dir := t.TempDir()
	h := newHarness(t, dir, nil)
	h.recover(t)
	h.populate(10)
	// Force the journal to disk, then "kill" the process: no Close, no
	// clean-shutdown marker.
	if err := h.store.Sync(); err != nil {
		t.Fatal(err)
	}

	h2 := newHarness(t, dir, nil)
	info := h2.recover(t)
	if !info.Saturated {
		t.Fatal("unclean shutdown must saturate")
	}
	if !h2.sketch.ColdStartActive() {
		t.Fatal("cold-start window not active")
	}
	// Saturated sketch: everything reads as possibly stale.
	snap := h2.sketch.Snapshot()
	if !snap.MightBeStale("/never/seen") || !snap.MightBeStale("/doc/000") {
		t.Fatal("cold-start snapshot is not saturated")
	}
	// Blind window: a write to a resource with no expiry entry is still
	// tracked conservatively.
	if !h2.sketch.ReportWrite("/unknown/key") {
		t.Fatal("blind window did not track unknown write")
	}
	genCold := h2.sketch.Generation()
	// After the window the real (replayed) sketch returns.
	h2.sim.Advance(2 * time.Minute)
	if h2.sketch.ColdStartActive() {
		t.Fatal("cold window did not retire")
	}
	if h2.sketch.Generation() == genCold {
		t.Fatal("generation did not advance on cold-window exit")
	}
	snap = h2.sketch.Snapshot()
	if snap.MightBeStale("/definitely/never/seen/anywhere") {
		t.Fatal("sketch still saturated after window")
	}
	if !snap.MightBeStale("/doc/003") {
		t.Fatal("replayed key lost after cold window")
	}
}

// TestLostUnsyncedSuffixIsNotClean pins the open-marker defence: when an
// incarnation's entire unsynced output dies (power loss, or the injected
// fsync kill rolling the file back), the disk must NOT masquerade as the
// clean history the previous shutdown sealed — the fsynced open marker
// written at recovery is what voids the old clean marker.
func TestLostUnsyncedSuffixIsNotClean(t *testing.T) {
	dir := t.TempDir()
	h := newHarness(t, dir, nil)
	h.recover(t)
	h.populate(5)
	if err := h.store.Close(); err != nil {
		t.Fatal(err)
	}

	h2 := newHarness(t, dir, nil)
	if info := h2.recover(t); info.Saturated {
		t.Fatalf("clean restart saturated: %+v", info)
	}
	// Everything synced so far (through the open marker) survives the
	// power loss below; record the segment sizes at this durable point.
	synced := segmentSizes(t, dir)
	// Acknowledged but never synced: the group commit hasn't fired.
	h2.populate(3)

	// Power loss: roll every segment back to its durable size and drop
	// segments born after the cut.
	for name, size := range segmentSizes(t, dir) {
		durableSize, existed := synced[name]
		path := filepath.Join(dir, name)
		switch {
		case !existed:
			if err := os.Remove(path); err != nil {
				t.Fatal(err)
			}
		case durableSize < size:
			if err := os.Truncate(path, durableSize); err != nil {
				t.Fatal(err)
			}
		}
	}

	h3 := newHarness(t, dir, nil)
	info := h3.recover(t)
	if !info.Saturated {
		t.Fatalf("lost acknowledged suffix recovered as clean history: %+v", info)
	}
}

// segmentSizes maps WAL segment file names to their current sizes.
func segmentSizes(t *testing.T, dir string) map[string]int64 {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	sizes := map[string]int64{}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".seg") {
			fi, err := e.Info()
			if err != nil {
				t.Fatal(err)
			}
			sizes[e.Name()] = fi.Size()
		}
	}
	return sizes
}

func TestInjectedCrashThenInPlaceRecovery(t *testing.T) {
	dir := t.TempDir()
	sim := clock.NewSimulated(time.Time{})
	inj := faults.New(sim, 42, faults.Rule{Component: faults.WALAppend, Kind: faults.Crash, Probability: 0.05})
	h := newHarness(t, dir, inj)
	h.sim = sim // share the injector's clock
	h.store = New(Config{Dir: dir, Clock: sim, Faults: inj, ColdWindow: time.Minute, BlindHorizon: 10 * time.Minute})
	h.sketch = cachesketch.NewServer(cachesketch.ServerConfig{Clock: sim, Journal: h.store})
	h.est = ttl.NewEstimator(ttl.Config{Clock: sim})
	h.recover(t)

	var crashes int
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("/doc/%03d", i%50)
		h.sketch.ReportCachedRead(key, sim.Now().Add(time.Hour))
		h.sketch.ReportWrite(key)
		if h.store.Crashed() {
			crashes++
			info, err := h.store.Recover(h.sketch, h.est)
			if err != nil {
				t.Fatalf("in-place recovery: %v", err)
			}
			if !info.Saturated {
				t.Fatal("crash recovery must saturate")
			}
			sim.Advance(2 * time.Minute) // let the cold window pass
		}
	}
	if crashes == 0 {
		t.Fatal("injector never fired; test is vacuous")
	}
	if h.store.Crashed() {
		t.Fatal("store left crashed")
	}
	st := h.store.Stats()
	if st.Recoveries != uint64(crashes)+1 {
		t.Fatalf("Recoveries = %d, want %d", st.Recoveries, crashes+1)
	}
}

func TestCorruptMidLogFallsBackToColdStart(t *testing.T) {
	dir := t.TempDir()
	sim := clock.NewSimulated(time.Time{})
	h := &harness{dir: dir, sim: sim}
	// Tiny segments so the log spans several files: damage in a non-final
	// segment is mid-log corruption, not a torn tail.
	cfg := Config{Dir: dir, Clock: sim, SegmentMaxBytes: 256, ColdWindow: time.Minute, BlindHorizon: 10 * time.Minute}
	h.store = New(cfg)
	h.sketch = cachesketch.NewServer(cachesketch.ServerConfig{Clock: sim, Journal: h.store})
	h.est = ttl.NewEstimator(ttl.Config{Clock: sim})
	h.recover(t)
	h.populate(25)
	if err := h.store.Snapshot(); err != nil {
		t.Fatal(err)
	}
	h.populate(25) // tail past the snapshot
	if err := h.store.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) < 2 {
		t.Fatalf("want several segments, got %v (%v)", segs, err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[10] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	h2 := &harness{dir: dir, sim: sim}
	h2.store = New(cfg)
	h2.sketch = cachesketch.NewServer(cachesketch.ServerConfig{Clock: sim, Journal: h2.store})
	h2.est = ttl.NewEstimator(ttl.Config{Clock: sim})
	info := h2.recover(t)
	if info.Mode != ColdStart {
		t.Fatalf("Mode = %v, want ColdStart", info.Mode)
	}
	if !info.Saturated {
		t.Fatal("corrupt log must saturate")
	}
	// The snapshot still applied: its keys are present.
	if !h2.sketch.Contains("/doc/000") {
		t.Fatal("snapshot state lost in cold start")
	}
	// The wiped log must be appendable again.
	h2.sketch.ReportCachedRead("/after/corruption", h2.sim.Now().Add(time.Hour))
	if !h2.sketch.ReportWrite("/after/corruption") {
		t.Fatal("post-wipe write not tracked")
	}
	if h2.store.Crashed() {
		t.Fatal("store dead after corruption recovery")
	}
	if err := h2.store.Close(); err != nil {
		t.Fatal(err)
	}

	// The reseeded log's LSNs must sit above the retained snapshot's
	// coverage, or everything journaled by this incarnation — the clean
	// marker included — would be skipped at the next replay as
	// already-covered history.
	h3 := &harness{dir: dir, sim: sim}
	h3.store = New(cfg)
	h3.sketch = cachesketch.NewServer(cachesketch.ServerConfig{Clock: sim, Journal: h3.store})
	h3.est = ttl.NewEstimator(ttl.Config{Clock: sim})
	info = h3.recover(t)
	if info.Saturated {
		t.Fatalf("clean restart after corruption recovery saturated: %+v", info)
	}
	if info.Replayed == 0 {
		t.Fatal("post-corruption incarnation's records were not replayed")
	}
	if !h3.sketch.Contains("/after/corruption") {
		t.Fatal("state journaled after the wipe lost across clean restart")
	}
}

// TestTornTailInsideSnapshotThenCleanRestart pins the LSN-reuse data-loss
// bug: a torn tail that truncates the only segment back INSIDE the
// snapshot's coverage used to leave the log reissuing covered LSNs, so
// every record of the next incarnation — its clean-shutdown marker
// included — was silently skipped by later recoveries (Replayed=0,
// perpetually saturated, journaled state gone despite clean shutdowns).
func TestTornTailInsideSnapshotThenCleanRestart(t *testing.T) {
	dir := t.TempDir()
	h := newHarness(t, dir, nil)
	h.recover(t)
	h.populate(30)
	h.store.JournalInvalidation(5)
	if err := h.store.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := h.store.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want the one active segment, got %v (%v)", segs, err)
	}
	// Corrupt one byte of an early frame: the CRC failure makes Open
	// truncate the torn tail from there, far below the snapshot's LSN.
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[20] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	h2 := newHarness(t, dir, nil)
	info := h2.recover(t)
	if info.Mode != ColdStart || !info.Saturated {
		t.Fatalf("truncation inside snapshot coverage: %+v, want saturated ColdStart", info)
	}
	if !h2.sketch.Contains("/doc/000") {
		t.Fatal("snapshot state lost")
	}
	// Journal fresh state in the recovered incarnation and seal it.
	h2.sketch.ReportCachedRead("/post/truncation", h2.sim.Now().Add(time.Hour))
	if !h2.sketch.ReportWrite("/post/truncation") {
		t.Fatal("post-truncation write not tracked")
	}
	if err := h2.store.Close(); err != nil {
		t.Fatal(err)
	}

	h3 := newHarness(t, dir, nil)
	info = h3.recover(t)
	if info.Saturated {
		t.Fatalf("clean shutdown recovered saturated: %+v", info)
	}
	if info.Replayed == 0 {
		t.Fatal("post-truncation incarnation's records were not replayed")
	}
	if !h3.sketch.Contains("/post/truncation") {
		t.Fatal("journaled state lost despite clean shutdown")
	}
	if info.Watermark != 5 {
		t.Fatalf("Watermark = %d, want 5", info.Watermark)
	}
}

// TestTornTailEveryOffset is the torn-write table test: the last record's
// frame is truncated at every byte offset and bit-flipped at every byte,
// and recovery must never panic, never report a clean warm start (which
// would under-report staleness), and always leave a usable store.
func TestTornTailEveryOffset(t *testing.T) {
	// Build a pristine log once, in a template dir.
	template := t.TempDir()
	h := newHarness(t, template, nil)
	h.recover(t)
	h.populate(8)
	if err := h.store.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(template, "wal-*.seg"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want one segment, got %v (%v)", segs, err)
	}
	pristine, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	segName := filepath.Base(segs[0])
	// The final record is the clean-shutdown marker: frame header (8) +
	// lsn (8) + 1 payload byte.
	const lastFrame = 17
	if len(pristine) < lastFrame {
		t.Fatalf("segment only %d bytes", len(pristine))
	}

	check := func(t *testing.T, mutated []byte, wantClean bool) {
		t.Helper()
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName), mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		h := newHarness(t, dir, nil)
		info := h.recover(t) // must not panic or error
		if wantClean && info.Saturated {
			t.Fatalf("untampered log saturated: %+v", info)
		}
		if !wantClean && !info.Saturated {
			t.Fatalf("tampered log recovered warm: %+v", info)
		}
		// The store must be fully usable either way.
		h.sketch.ReportCachedRead("/post/recovery", h.sim.Now().Add(time.Hour))
		if !h.sketch.ReportWrite("/post/recovery") {
			t.Fatal("store unusable after recovery")
		}
	}

	t.Run("pristine", func(t *testing.T) { check(t, pristine, true) })
	t.Run("truncate", func(t *testing.T) {
		for cut := len(pristine) - lastFrame; cut < len(pristine); cut++ {
			check(t, pristine[:cut], false)
		}
	})
	t.Run("bitflip", func(t *testing.T) {
		for off := len(pristine) - lastFrame; off < len(pristine); off++ {
			mutated := make([]byte, len(pristine))
			copy(mutated, pristine)
			mutated[off] ^= 0x40
			check(t, mutated, false)
		}
	})
}

func TestSnapshotCrashLeavesTornTempOnly(t *testing.T) {
	dir := t.TempDir()
	sim := clock.NewSimulated(time.Time{})
	inj := faults.New(sim, 1, faults.Rule{Component: faults.SnapshotWrite, Kind: faults.Crash, Probability: 1})
	h := &harness{dir: dir, sim: sim}
	h.store = New(Config{Dir: dir, Clock: sim, Faults: inj, ColdWindow: time.Minute})
	h.sketch = cachesketch.NewServer(cachesketch.ServerConfig{Clock: sim, Journal: h.store})
	h.est = ttl.NewEstimator(ttl.Config{Clock: sim})
	h.recover(t)
	h.populate(10)
	if err := h.store.Snapshot(); !errors.Is(err, faults.ErrCrash) {
		t.Fatalf("err = %v, want ErrCrash", err)
	}
	if !h.store.Crashed() {
		t.Fatal("store not marked crashed")
	}
	// No completed snapshot may exist; at most a torn temp file.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".snap") {
			t.Fatalf("completed snapshot %s exists after crash", e.Name())
		}
	}
	// Recovery ignores the torn temp and saturates (unclean shutdown).
	info, err := h.store.Recover(h.sketch, h.est)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Saturated {
		t.Fatal("post-snapshot-crash recovery must saturate")
	}
	if !h.sketch.Contains("/doc/000") {
		t.Fatal("journaled state lost")
	}
}

// TestWholeLogTornToEmptySaturates pins the first-frame damage case: when
// the torn-tail truncation swallows every record (no snapshot yet), the
// recovery must NOT classify the directory as a fresh deployment and come
// up warm — segments that held bytes but yielded nothing are destroyed
// history, and only the saturation window preserves Δ over it.
func TestWholeLogTornToEmptySaturates(t *testing.T) {
	dir := t.TempDir()
	h := newHarness(t, dir, nil)
	h.recover(t)
	h.populate(5)
	if err := h.store.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want one segment, got %v (%v)", segs, err)
	}
	// Damage the very first frame: the CRC failure makes the torn-tail
	// scan truncate from offset 0, leaving an empty segment.
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[10] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	h2 := newHarness(t, dir, nil)
	info := h2.recover(t)
	if info.Mode != ColdStart || !info.Saturated {
		t.Fatalf("whole-log loss recovered as %+v, want saturated ColdStart", info)
	}
	// The store keeps working and a clean shutdown recovers warm.
	h2.sketch.ReportCachedRead("/rebuilt", h2.sim.Now().Add(time.Hour))
	if !h2.sketch.ReportWrite("/rebuilt") {
		t.Fatal("post-loss write not tracked")
	}
	if err := h2.store.Close(); err != nil {
		t.Fatal(err)
	}
	h3 := newHarness(t, dir, nil)
	if info := h3.recover(t); info.Saturated || !h3.sketch.Contains("/rebuilt") {
		t.Fatalf("clean restart after rebuild: %+v, contains=%v", info, h3.sketch.Contains("/rebuilt"))
	}
}

// TestAdvanceInvalidationResumesFromWatermark pins the sequence-ownership
// contract: the store allocates invalidation sequences one past the
// recovered watermark, so an owner whose own counters restart at zero
// never journals values the watermark guard would drop.
func TestAdvanceInvalidationResumesFromWatermark(t *testing.T) {
	dir := t.TempDir()
	h := newHarness(t, dir, nil)
	h.recover(t)
	for want := uint64(1); want <= 3; want++ {
		if got := h.store.AdvanceInvalidation(); got != want {
			t.Fatalf("AdvanceInvalidation = %d, want %d", got, want)
		}
	}
	if err := h.store.Close(); err != nil {
		t.Fatal(err)
	}

	h2 := newHarness(t, dir, nil)
	if info := h2.recover(t); info.Watermark != 3 {
		t.Fatalf("recovered Watermark = %d, want 3", info.Watermark)
	}
	if got := h2.store.AdvanceInvalidation(); got != 4 {
		t.Fatalf("post-restart AdvanceInvalidation = %d, want 4", got)
	}
	if err := h2.store.Close(); err != nil {
		t.Fatal(err)
	}

	h3 := newHarness(t, dir, nil)
	if info := h3.recover(t); info.Watermark != 4 {
		t.Fatalf("Watermark = %d, want 4: the advanced sequence was not journaled", info.Watermark)
	}
}

// TestConcurrentSnapshotsCoalesce hammers Snapshot from many goroutines:
// exactly one writer may own the temp file at a time (interleaved writes
// would fail the CRC and poison recovery), and losers must coalesce.
func TestConcurrentSnapshotsCoalesce(t *testing.T) {
	dir := t.TempDir()
	h := newHarness(t, dir, nil)
	h.recover(t)
	h.populate(50)

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- h.store.Snapshot()
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("concurrent Snapshot: %v", err)
		}
	}
	if _, _, _, _, ok := loadNewestSnapshot(dir); !ok {
		t.Fatal("no loadable snapshot after concurrent writers")
	}
	if err := h.store.Close(); err != nil {
		t.Fatal(err)
	}

	h2 := newHarness(t, dir, nil)
	info := h2.recover(t)
	if info.Saturated || info.SnapshotLSN == 0 {
		t.Fatalf("info = %+v, want clean recovery from a snapshot", info)
	}
	if !h2.sketch.Contains("/doc/049") {
		t.Fatal("state lost across snapshot recovery")
	}
}

func TestShouldSnapshotTrigger(t *testing.T) {
	dir := t.TempDir()
	sim := clock.NewSimulated(time.Time{})
	h := &harness{dir: dir, sim: sim}
	h.store = New(Config{Dir: dir, Clock: sim, SnapshotEvery: 10, ColdWindow: time.Minute})
	h.sketch = cachesketch.NewServer(cachesketch.ServerConfig{Clock: sim, Journal: h.store})
	h.recover(t)
	if h.store.ShouldSnapshot() {
		t.Fatal("fresh store wants a snapshot")
	}
	h.populate(10) // 20 journal records
	if !h.store.ShouldSnapshot() {
		t.Fatal("trigger did not fire")
	}
	if err := h.store.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if h.store.ShouldSnapshot() {
		t.Fatal("trigger not reset by snapshot")
	}
}
