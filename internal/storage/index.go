package storage

import (
	"fmt"
	"sort"
	"strconv"

	"speedkit/internal/query"
)

// This file adds hash-based secondary indexes to the document store.
// Listing pages are equality queries ("category = shoes"), and the
// invalidation-heavy workloads re-evaluate them constantly; an equality
// index turns those from collection scans into candidate lookups.
//
// Index maintenance is synchronous with the mutation (inside the same
// critical section), so an index is never stale relative to a read.

// fieldIndex maps canonical value keys to the set of document IDs
// carrying that value.
type fieldIndex map[string]map[string]struct{}

// indexKey canonicalizes a value for index lookup with the same numeric
// coercion the query engine applies: int64(5), 5, and 5.0 share a key,
// while "5" (a string) does not.
func indexKey(v any) (string, bool) {
	switch n := v.(type) {
	case nil:
		return "z:null", true
	case bool:
		return "b:" + strconv.FormatBool(n), true
	case string:
		return "s:" + n, true
	}
	if f, ok := toFloatIndex(v); ok {
		return "n:" + strconv.FormatFloat(f, 'g', -1, 64), true
	}
	return "", false // unindexable type (maps, slices)
}

func toFloatIndex(v any) (float64, bool) {
	switch n := v.(type) {
	case int:
		return float64(n), true
	case int8:
		return float64(n), true
	case int16:
		return float64(n), true
	case int32:
		return float64(n), true
	case int64:
		return float64(n), true
	case uint:
		return float64(n), true
	case uint8:
		return float64(n), true
	case uint16:
		return float64(n), true
	case uint32:
		return float64(n), true
	case uint64:
		return float64(n), true
	case float32:
		return float64(n), true
	case float64:
		return n, true
	}
	return 0, false
}

// IndexStats counts index usage.
type IndexStats struct {
	// Lookups counts queries answered through an index.
	Lookups uint64
	// Scans counts queries that fell back to a full collection scan.
	Scans uint64
}

// CreateIndex builds an equality index on collection.field, backfilling
// from existing documents. Creating an existing index is a no-op.
// Indexes only cover top-level scalar fields (no dotted paths).
func (s *DocumentStore) CreateIndex(collection, field string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.indexes == nil {
		s.indexes = make(map[string]map[string]fieldIndex)
	}
	byField, ok := s.indexes[collection]
	if !ok {
		byField = make(map[string]fieldIndex)
		s.indexes[collection] = byField
	}
	if _, exists := byField[field]; exists {
		return
	}
	idx := make(fieldIndex)
	for id, v := range s.collections[collection] {
		indexAdd(idx, field, id, v.doc)
	}
	byField[field] = idx
}

// DropIndex removes an index, reporting whether it existed.
func (s *DocumentStore) DropIndex(collection, field string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	byField := s.indexes[collection]
	if _, ok := byField[field]; !ok {
		return false
	}
	delete(byField, field)
	return true
}

// Indexes lists the indexed fields of a collection, sorted.
func (s *DocumentStore) Indexes(collection string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.indexes[collection]))
	for f := range s.indexes[collection] {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// IndexStats returns the usage counters.
func (s *DocumentStore) IndexStats() IndexStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.idxStats
}

// indexAdd registers doc's field value under id. Callers hold s.mu.
func indexAdd(idx fieldIndex, field, id string, doc map[string]any) {
	v, ok := doc[field]
	if !ok {
		return
	}
	key, ok := indexKey(v)
	if !ok {
		return
	}
	set, ok := idx[key]
	if !ok {
		set = make(map[string]struct{})
		idx[key] = set
	}
	set[id] = struct{}{}
}

// indexRemove unregisters doc's field value. Callers hold s.mu.
func indexRemove(idx fieldIndex, field, id string, doc map[string]any) {
	v, ok := doc[field]
	if !ok {
		return
	}
	key, ok := indexKey(v)
	if !ok {
		return
	}
	if set, ok := idx[key]; ok {
		delete(set, id)
		if len(set) == 0 {
			delete(idx, key)
		}
	}
}

// updateIndexesLocked maintains every index of the collection across one
// document transition. Callers hold s.mu.
func (s *DocumentStore) updateIndexesLocked(collection, id string, before, after map[string]any) {
	for field, idx := range s.indexes[collection] {
		if before != nil {
			indexRemove(idx, field, id, before)
		}
		if after != nil {
			indexAdd(idx, field, id, after)
		}
	}
}

// lookupIndexLocked returns the candidate ID set for an equality lookup,
// and whether an index on the field exists. Callers hold s.mu (read).
func (s *DocumentStore) lookupIndexLocked(collection, field string, value any) (map[string]struct{}, bool) {
	idx, ok := s.indexes[collection][field]
	if !ok {
		return nil, false
	}
	key, ok := indexKey(value)
	if !ok {
		return nil, false
	}
	return idx[key], true
}

// queryCandidates snapshots the documents a query must evaluate: the
// smallest indexed equality leg's candidates when available, else the
// whole collection. The returned docs are copies with "id" injected.
func (s *DocumentStore) queryCandidates(q query.Query) []map[string]any {
	lookups := query.EqualityLookups(q.Filter)

	s.mu.RLock()
	coll := s.collections[q.Collection]

	var best map[string]struct{}
	usedIndex := false
	for field, value := range lookups {
		if set, ok := s.lookupIndexLocked(q.Collection, field, value); ok {
			usedIndex = true
			if best == nil || len(set) < len(best) {
				best = set
			}
		}
	}

	var snapshot []map[string]any
	appendDoc := func(id string, v versionedDoc) {
		d := cloneDoc(v.doc)
		if _, has := d["id"]; !has {
			d["id"] = id
		}
		snapshot = append(snapshot, d)
	}
	if usedIndex {
		snapshot = make([]map[string]any, 0, len(best))
		for id := range best {
			if v, ok := coll[id]; ok {
				appendDoc(id, v)
			}
		}
	} else {
		snapshot = make([]map[string]any, 0, len(coll))
		for id, v := range coll {
			appendDoc(id, v)
		}
	}
	s.mu.RUnlock()

	s.mu.Lock()
	if usedIndex {
		s.idxStats.Lookups++
	} else {
		s.idxStats.Scans++
	}
	s.mu.Unlock()

	sort.Slice(snapshot, func(i, j int) bool {
		return fmt.Sprint(snapshot[i]["id"]) < fmt.Sprint(snapshot[j]["id"])
	})
	return snapshot
}
