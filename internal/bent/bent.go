// Package bent is the continuous benchmark harness behind
// cmd/speedkit-bent: named benchmark suites declared in checked-in
// .suite files, machine-readable runs of `go test -bench`, and
// regression comparison against committed BENCH_<suite>.json baselines.
//
// The package is three small layers, each usable alone:
//
//   - parsing: Parse turns `go test -bench` text output into a Report
//     (cmd/speedkit-benchjson is a thin shell over this);
//   - suites: LoadSuites reads the declarative suite registry;
//   - comparison: Compare diffs a fresh Report against a baseline Report
//     within a configurable noise band and reports regressions.
//
// Everything is stdlib-only and deterministic: no clock reads, no
// network; provenance notes are passed in by callers.
package bent

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name without the -P GOMAXPROCS suffix. For
	// sub-benchmarks the suffix is cut at the LAST dash, so
	// "BenchmarkWALAppend/durable/appenders-8-1" parses as name
	// ".../appenders-8" at procs 1 — stable across -cpu settings.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS the benchmark ran at (0 if unsuffixed).
	Procs int `json:"procs,omitempty"`
	// Iterations is b.N for the final run.
	Iterations uint64 `json:"iterations"`
	// NsPerOp is the headline latency.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp / AllocsPerOp come from -benchmem; nil when absent.
	BytesPerOp  *uint64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *uint64 `json:"allocs_per_op,omitempty"`
	// BaselineNsPerOp and Speedup are filled when a baseline entry
	// matches Name (see Parse's baselines argument).
	BaselineNsPerOp float64 `json:"baseline_ns_per_op,omitempty"`
	Speedup         float64 `json:"speedup_vs_baseline,omitempty"`
}

// Report is the machine-readable form of one benchmark run — the
// document committed as BENCH_<suite>.json and diffed by Compare.
type Report struct {
	// Suite names the suite that produced the run ("" for ad-hoc
	// conversions through cmd/speedkit-benchjson).
	Suite string `json:"suite,omitempty"`
	// Note describes the provenance of the numbers.
	Note string `json:"note,omitempty"`
	// Goos/Goarch/CPU/Pkg echo the context lines go test prints.
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// Parse consumes `go test -bench` output and extracts context plus
// results. baselines maps benchmark names to reference ns/op; matching
// results get BaselineNsPerOp and Speedup filled (pass nil for none).
func Parse(r io.Reader, baselines map[string]float64) (Report, error) {
	var rep Report
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := ParseLine(line)
			if !ok {
				continue
			}
			if base, has := baselines[res.Name]; has && res.NsPerOp > 0 {
				res.BaselineNsPerOp = base
				res.Speedup = base / res.NsPerOp
			}
			rep.Benchmarks = append(rep.Benchmarks, res)
		}
	}
	return rep, sc.Err()
}

// ParseLine parses one result line, e.g.
//
//	BenchmarkParallelCacheGet-4  35077526  35.50 ns/op  0 B/op  0 allocs/op
//	BenchmarkWALAppend/durable/appenders-8-1  300  25626 ns/op  0 allocs/op
//
// The GOMAXPROCS suffix is cut at the last dash so sub-benchmark names
// containing dashes keep their identity.
func ParseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	var res Result
	res.Name = fields[0]
	if i := strings.LastIndex(fields[0], "-"); i > 0 {
		if p, err := strconv.Atoi(fields[0][i+1:]); err == nil {
			res.Name, res.Procs = fields[0][:i], p
		}
	}
	iter, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res.Iterations = iter
	// Remaining fields are value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			if v, err := strconv.ParseFloat(val, 64); err == nil {
				res.NsPerOp = v
			}
		case "B/op":
			if v, err := strconv.ParseUint(val, 10, 64); err == nil {
				res.BytesPerOp = &v
			}
		case "allocs/op":
			if v, err := strconv.ParseUint(val, 10, 64); err == nil {
				res.AllocsPerOp = &v
			}
		}
	}
	return res, res.NsPerOp > 0
}

// ReadReport loads a committed BENCH_<suite>.json document.
func ReadReport(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return Report{}, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// WriteReport writes rep as indented JSON, the committed-baseline form.
func WriteReport(path string, rep Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
