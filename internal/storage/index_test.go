package storage

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"speedkit/internal/clock"
	"speedkit/internal/query"
)

func seededStore(t *testing.T, n int) *DocumentStore {
	t.Helper()
	s := NewDocumentStore(clock.NewSimulated(time.Time{}))
	cats := []string{"shoes", "hats", "belts"}
	for i := 0; i < n; i++ {
		err := s.Insert("products", fmt.Sprintf("p%03d", i), map[string]any{
			"category": cats[i%len(cats)],
			"price":    float64(i),
			"stock":    int64(i % 10),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestIndexLookupMatchesScan(t *testing.T) {
	s := seededStore(t, 90)
	q := query.MustParse(`products WHERE category = "shoes" AND price < 30 ORDER BY price`)

	scan := s.Query(q)
	s.CreateIndex("products", "category")
	indexed := s.Query(q)

	if len(scan) != len(indexed) {
		t.Fatalf("scan %d vs indexed %d results", len(scan), len(indexed))
	}
	for i := range scan {
		if scan[i]["id"] != indexed[i]["id"] {
			t.Fatalf("result %d differs: %v vs %v", i, scan[i]["id"], indexed[i]["id"])
		}
	}
	st := s.IndexStats()
	if st.Lookups != 1 || st.Scans != 1 {
		t.Fatalf("index stats = %+v", st)
	}
}

func TestIndexMaintainedAcrossMutations(t *testing.T) {
	s := seededStore(t, 30)
	s.CreateIndex("products", "category")
	q := query.New("products", query.Eq("category", "shoes"))
	before := len(s.Query(q))

	// Move a hat into shoes via Patch.
	if err := s.Patch("products", "p001", map[string]any{"category": "shoes"}); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Query(q)); got != before+1 {
		t.Fatalf("after patch-in: %d, want %d", got, before+1)
	}
	// Move it back out via Update (full replace).
	if err := s.Update("products", "p001", map[string]any{"category": "belts"}); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Query(q)); got != before {
		t.Fatalf("after update-out: %d, want %d", got, before)
	}
	// Delete a shoe.
	if err := s.Delete("products", "p000"); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Query(q)); got != before-1 {
		t.Fatalf("after delete: %d, want %d", got, before-1)
	}
	// Insert a new shoe.
	if err := s.Insert("products", "pnew", map[string]any{"category": "shoes"}); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Query(q)); got != before {
		t.Fatalf("after insert: %d, want %d", got, before)
	}
	// Removing the field via Patch(nil) drops it from the index.
	if err := s.Patch("products", "pnew", map[string]any{"category": nil}); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Query(q)); got != before-1 {
		t.Fatalf("after field removal: %d, want %d", got, before-1)
	}
}

func TestIndexNumericCoercion(t *testing.T) {
	s := NewDocumentStore(clock.NewSimulated(time.Time{}))
	_ = s.Insert("c", "d1", map[string]any{"n": int64(5)})
	_ = s.Insert("c", "d2", map[string]any{"n": 5.0})
	_ = s.Insert("c", "d3", map[string]any{"n": "5"}) // string, distinct
	s.CreateIndex("c", "n")

	if got := len(s.Query(query.New("c", query.Eq("n", 5)))); got != 2 {
		t.Fatalf("numeric lookup = %d docs, want 2", got)
	}
	if got := len(s.Query(query.New("c", query.Eq("n", "5")))); got != 1 {
		t.Fatalf("string lookup = %d docs, want 1", got)
	}
}

func TestIndexBackfillAndDrop(t *testing.T) {
	s := seededStore(t, 30)
	s.CreateIndex("products", "stock")
	s.CreateIndex("products", "stock") // idempotent
	if idx := s.Indexes("products"); len(idx) != 1 || idx[0] != "stock" {
		t.Fatalf("indexes = %v", idx)
	}
	r := s.Query(query.New("products", query.Eq("stock", 3)))
	if len(r) != 3 {
		t.Fatalf("backfilled lookup = %d docs", len(r))
	}
	if !s.DropIndex("products", "stock") {
		t.Fatal("drop existing failed")
	}
	if s.DropIndex("products", "stock") {
		t.Fatal("double drop succeeded")
	}
	// Still correct via scan.
	if len(s.Query(query.New("products", query.Eq("stock", 3)))) != 3 {
		t.Fatal("scan after drop wrong")
	}
}

func TestIndexUnindexableValuesSkipped(t *testing.T) {
	s := NewDocumentStore(clock.NewSimulated(time.Time{}))
	_ = s.Insert("c", "d1", map[string]any{"meta": map[string]any{"x": 1}, "tag": "a"})
	s.CreateIndex("c", "meta")
	// Lookup on the map value cannot use the index (unindexable), must
	// fall back to a scan and still work.
	r := s.Query(query.New("c", query.Eq("tag", "a")))
	if len(r) != 1 {
		t.Fatalf("scan fallback = %d docs", len(r))
	}
}

func TestIndexSmallestCandidateSetChosen(t *testing.T) {
	s := NewDocumentStore(clock.NewSimulated(time.Time{}))
	// 100 docs share tag "common"; only 1 has rare="yes".
	for i := 0; i < 100; i++ {
		_ = s.Insert("c", fmt.Sprintf("d%03d", i), map[string]any{
			"tag":  "common",
			"rare": map[bool]string{true: "yes", false: "no"}[i == 42],
		})
	}
	s.CreateIndex("c", "tag")
	s.CreateIndex("c", "rare")
	q := query.New("c", query.And{query.Eq("tag", "common"), query.Eq("rare", "yes")})
	r := s.Query(q)
	if len(r) != 1 || r[0]["id"] != "d042" {
		t.Fatalf("result = %v", r)
	}
}

func TestIndexPropertyEquivalentToScan(t *testing.T) {
	// Property: for random document sets and random mutations, an indexed
	// equality query returns exactly the scan result.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		indexed := NewDocumentStore(clock.NewSimulated(time.Time{}))
		plain := NewDocumentStore(clock.NewSimulated(time.Time{}))
		indexed.CreateIndex("c", "k")

		apply := func(s *DocumentStore, op int, id string, val int) {
			doc := map[string]any{"k": int64(val % 5)}
			switch op {
			case 0:
				_ = s.Insert("c", id, doc)
			case 1:
				_ = s.Update("c", id, doc)
			case 2:
				_ = s.Patch("c", id, doc)
			case 3:
				_ = s.Delete("c", id)
			}
		}
		for i := 0; i < 200; i++ {
			op := rng.Intn(4)
			id := fmt.Sprintf("d%d", rng.Intn(30))
			val := rng.Intn(10)
			apply(indexed, op, id, val)
			apply(plain, op, id, val)
		}
		for v := 0; v < 5; v++ {
			q := query.New("c", query.Eq("k", int64(v))).OrderBy("id", false)
			a, b := indexed.Query(q), plain.Query(q)
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i]["id"] != b[i]["id"] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkQueryIndexedVsScan(b *testing.B) {
	s := NewDocumentStore(clock.NewSimulated(time.Time{}))
	for i := 0; i < 10000; i++ {
		_ = s.Insert("products", fmt.Sprintf("p%05d", i), map[string]any{
			"category": fmt.Sprintf("cat%d", i%100),
			"price":    float64(i),
		})
	}
	q := query.MustParse(`products WHERE category = "cat7" ORDER BY price LIMIT 10`)

	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.Query(q)
		}
	})
	s.CreateIndex("products", "category")
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.Query(q)
		}
	})
}
