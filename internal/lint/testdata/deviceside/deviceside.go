// Package deviceside holds the gdprboundary negative case: identity and
// PII are fine outside shared infrastructure. The fixture test loads it
// under "fixture/internal/device" and asserts zero findings.
package deviceside

import "speedkit/internal/session"

// Profile is on-device state; the boundary analyzer only polices shared
// infrastructure, so this PII surface is allowed.
type Profile struct {
	Email string
	Cart  []session.CartItem
}
