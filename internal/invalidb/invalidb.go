// Package invalidb implements the real-time query invalidation engine —
// the server-side component that turns raw database change events into
// "this cached page is now stale" signals. It reproduces the semantics of
// the production system's stream-processing matcher: registered
// continuous queries are partitioned across shards; every change event is
// matched against all queries of its collection; a query is invalidated
// when the change can alter its result set (the document entered it, left
// it, or changed while inside it).
//
// Queries are partitioned by collection hash over a power-of-two shard
// count, so matching one change event scans a single shard — the shard
// every query that could possibly match lives in — instead of every
// registration. Queries registered without a collection (cross-collection
// predicates) are unpartitionable; they live in a separate global bucket
// that is matched against every event and merged into the shard's hits.
package invalidb

import (
	"sort"
	"sync"
	"time"

	"speedkit/internal/clock"
	"speedkit/internal/query"
	"speedkit/internal/storage"
)

// MatchKind classifies how a change affects a query result.
type MatchKind int

// Match kinds.
const (
	// Entered: the document now matches a query it didn't match before.
	Entered MatchKind = iota
	// Left: the document no longer matches.
	Left
	// Changed: the document matched before and after, but its content
	// changed (ordering or displayed fields may differ).
	Changed
)

// String names the match kind.
func (k MatchKind) String() string {
	switch k {
	case Entered:
		return "entered"
	case Left:
		return "left"
	case Changed:
		return "changed"
	}
	return "unknown"
}

// Invalidation is one staleness signal.
type Invalidation struct {
	// RegistrationID identifies the affected cached resource (typically
	// the listing page path or the query ID).
	RegistrationID string
	// Kind says how the result set was affected.
	Kind MatchKind
	// Change is the underlying database event.
	Change storage.ChangeEvent
	// DetectedAt is when the engine classified the event.
	DetectedAt time.Time
}

// Config parameterizes the engine.
type Config struct {
	// Shards partitions registered queries by collection hash (default 4,
	// rounded up to the next power of two so the shard index is a mask).
	// More shards mean fewer co-resident collections per shard, and
	// therefore fewer non-matching queries scanned per event.
	Shards int
	// Clock supplies detection timestamps (default system clock).
	Clock clock.Clock
}

func (c *Config) applyDefaults() {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Clock == nil {
		c.Clock = clock.System
	}
}

// nextPow2 rounds n up to the next power of two.
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Stats counts engine activity.
type Stats struct {
	EventsProcessed uint64
	Matches         uint64
	Registered      int
}

// Engine matches change events against registered queries. Safe for
// concurrent use.
type Engine struct {
	cfg    Config
	shards []*shard
	mask   uint32
	// global holds cross-collection registrations (empty Collection):
	// predicates that cannot be pinned to one collection's shard and must
	// be merged into every event's match.
	global *shard

	mu          sync.Mutex
	byID        map[string]*shard // guarded by mu; registration → home shard
	subscribers map[int]func(Invalidation)
	nextSub     int
	events      uint64
	matches     uint64
}

type shard struct {
	mu   sync.RWMutex
	regs map[string]query.Query // guarded by mu
}

// New creates an engine.
func New(cfg Config) *Engine {
	cfg.applyDefaults()
	n := nextPow2(cfg.Shards)
	e := &Engine{
		cfg:         cfg,
		shards:      make([]*shard, n),
		mask:        uint32(n - 1),
		global:      &shard{regs: make(map[string]query.Query)},
		byID:        make(map[string]*shard),
		subscribers: make(map[int]func(Invalidation)),
	}
	for i := range e.shards {
		e.shards[i] = &shard{regs: make(map[string]query.Query)}
	}
	return e
}

// collectionHash is FNV-1a over the collection name.
func collectionHash(collection string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(collection); i++ {
		h ^= uint32(collection[i])
		h *= 16777619
	}
	return h
}

// homeShard returns the shard a query lives in: the collection-hash shard
// for partitionable queries, the global bucket for cross-collection ones.
func (e *Engine) homeShard(q query.Query) *shard {
	if q.Collection == "" {
		return e.global
	}
	return e.shards[collectionHash(q.Collection)&e.mask]
}

// Register adds (or replaces) a continuous query under id. A query with
// an empty Collection is a cross-collection predicate: it is matched
// against events of every collection (by filter alone) through the
// engine's merge path.
func (e *Engine) Register(id string, q query.Query) {
	s := e.homeShard(q)
	e.mu.Lock()
	if prev, ok := e.byID[id]; ok && prev != s {
		// Replacing with a different collection moves the registration.
		prev.mu.Lock()
		delete(prev.regs, id)
		prev.mu.Unlock()
	}
	e.byID[id] = s
	e.mu.Unlock()
	s.mu.Lock()
	s.regs[id] = q
	s.mu.Unlock()
}

// Unregister removes the query under id, reporting whether it existed.
func (e *Engine) Unregister(id string) bool {
	e.mu.Lock()
	s, ok := e.byID[id]
	delete(e.byID, id)
	e.mu.Unlock()
	if !ok {
		return false
	}
	s.mu.Lock()
	delete(s.regs, id)
	s.mu.Unlock()
	return true
}

// Registered returns the number of registered queries.
func (e *Engine) Registered() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.byID)
}

// Shards returns the matcher's shard count — a deployment-shape fact
// health endpoints report so operators can see how the engine was sized.
func (e *Engine) Shards() int { return len(e.shards) }

// OnInvalidation subscribes fn to invalidation signals. Signals for one
// event are delivered sorted by registration ID, synchronously from
// Process. The returned cancel function unsubscribes.
func (e *Engine) OnInvalidation(fn func(Invalidation)) (cancel func()) {
	e.mu.Lock()
	id := e.nextSub
	e.nextSub++
	e.subscribers[id] = fn
	e.mu.Unlock()
	return func() {
		e.mu.Lock()
		delete(e.subscribers, id)
		e.mu.Unlock()
	}
}

// classify decides whether a change affects a query and how. An absent
// before/after image means the document did not exist on that side, so a
// nil image never matches (distinct from an empty document).
func classify(q query.Query, ev storage.ChangeEvent) (MatchKind, bool) {
	if q.Collection != ev.Collection {
		return 0, false
	}
	return classifyImages(q, ev)
}

// classifyImages compares the before/after images against the query's
// filter, ignoring collections — the shared core of the sharded match
// (which pre-selects by collection) and the cross-collection merge path
// (which matches by filter alone).
func classifyImages(q query.Query, ev storage.ChangeEvent) (MatchKind, bool) {
	before := ev.Before != nil && q.Match(ev.Before)
	after := ev.After != nil && q.Match(ev.After)
	switch {
	case before && after:
		return Changed, true
	case before:
		return Left, true
	case after:
		return Entered, true
	default:
		return 0, false
	}
}

// hit is one shard-local match: a registration and how it was affected.
type hit struct {
	id   string
	kind MatchKind
}

// matchInto runs the per-shard match loop: every registration in regs is
// classified against ev and hits are written into dst, which the caller
// must size to len(regs). Returns the hit count. wildcard selects the
// cross-collection rule (filter-only matching) used for the global
// bucket. This is the loop the invalidation-matching bench times per
// shard; it must not allocate — the caller owns dst.
//
//speedkit:hotpath
func matchInto(regs map[string]query.Query, ev storage.ChangeEvent, wildcard bool, dst []hit) int {
	n := 0
	for id, q := range regs {
		var kind MatchKind
		var ok bool
		if wildcard {
			kind, ok = classifyImages(q, ev)
		} else {
			kind, ok = classify(q, ev)
		}
		if ok {
			dst[n] = hit{id: id, kind: kind}
			n++
		}
	}
	return n
}

// matchShard locks s and collects its hits for ev, appending to hits.
func matchShard(s *shard, ev storage.ChangeEvent, wildcard bool, hits []hit) []hit {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.regs) == 0 {
		return hits
	}
	dst := make([]hit, len(s.regs))
	n := matchInto(s.regs, ev, wildcard, dst)
	return append(hits, dst[:n]...)
}

// Process matches one change event against every registered query and
// delivers invalidation signals to subscribers. Returns the signals for
// callers that prefer pull-style use.
//
// Only the shard owning the event's collection is scanned — every query
// that could match lives there, because queries partition by the same
// collection hash and classify rejects cross-collection pairs. The global
// bucket of cross-collection predicates is then merged in; it is empty
// unless such queries were registered, so the common case touches exactly
// one shard.
func (e *Engine) Process(ev storage.ChangeEvent) []Invalidation {
	now := e.cfg.Clock.Now()

	all := matchShard(e.shards[collectionHash(ev.Collection)&e.mask], ev, false, nil)
	all = matchShard(e.global, ev, true, all)
	sort.Slice(all, func(i, j int) bool { return all[i].id < all[j].id })

	out := make([]Invalidation, len(all))
	for i, h := range all {
		out[i] = Invalidation{
			RegistrationID: h.id,
			Kind:           h.kind,
			Change:         ev,
			DetectedAt:     now,
		}
	}

	e.mu.Lock()
	e.events++
	e.matches += uint64(len(out))
	subs := make([]func(Invalidation), 0, len(e.subscribers))
	ids := make([]int, 0, len(e.subscribers))
	for id := range e.subscribers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		subs = append(subs, e.subscribers[id])
	}
	e.mu.Unlock()

	for _, inv := range out {
		for _, fn := range subs {
			fn(inv)
		}
	}
	return out
}

// AttachTo subscribes the engine to a document store's change stream so
// every committed mutation is matched automatically. Returns a cancel
// function detaching it.
func (e *Engine) AttachTo(docs *storage.DocumentStore) (cancel func()) {
	return docs.Watch(func(ev storage.ChangeEvent) {
		e.Process(ev)
	})
}

// Stats returns a copy of the counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Stats{
		EventsProcessed: e.events,
		Matches:         e.matches,
		Registered:      len(e.byID),
	}
}
