package httpclient

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"speedkit/internal/netsim"
	"speedkit/internal/proxy"
)

// brokenServer returns a server that answers every request with status
// and body.
func brokenServer(t *testing.T, status int, body string) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(status)
		_, _ = w.Write([]byte(body))
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestFetchServerErrorIsNotOffline(t *testing.T) {
	ts := brokenServer(t, http.StatusInternalServerError, "boom")
	tr := New(ts.URL, ts.Client())
	_, _, _, err := tr.Fetch(netsim.EU, "/x")
	if err == nil {
		t.Fatal("500 swallowed")
	}
	if errors.Is(err, proxy.ErrOffline) {
		t.Fatal("application error classified as offline")
	}
}

func TestFetchConnectionRefusedIsOffline(t *testing.T) {
	tr := New("http://127.0.0.1:1", nil) // nothing listens on port 1
	_, _, _, err := tr.Fetch(netsim.EU, "/x")
	if !errors.Is(err, proxy.ErrOffline) {
		t.Fatalf("err = %v, want ErrOffline", err)
	}
	_, rerr := tr.Revalidate(netsim.EU, "/x", 1)
	if !errors.Is(rerr, proxy.ErrOffline) {
		t.Fatalf("revalidate err = %v, want ErrOffline", rerr)
	}
}

func TestFetchSketchDegradesGracefully(t *testing.T) {
	// Unreachable server → nil snapshot, no panic.
	tr := New("http://127.0.0.1:1", nil)
	if sn, _ := tr.FetchSketch(netsim.EU); sn != nil {
		t.Fatal("snapshot from dead server")
	}
	// Server up but returning garbage → nil snapshot.
	ts := brokenServer(t, http.StatusOK, "not-a-bloom-filter")
	tr2 := New(ts.URL, ts.Client())
	if sn, _ := tr2.FetchSketch(netsim.EU); sn != nil {
		t.Fatal("snapshot decoded from garbage")
	}
	// Server erroring → nil snapshot.
	ts500 := brokenServer(t, http.StatusServiceUnavailable, "")
	tr3 := New(ts500.URL, ts500.Client())
	if sn, _ := tr3.FetchSketch(netsim.EU); sn != nil {
		t.Fatal("snapshot from 503")
	}
}

func TestFetchBlocksDegradesGracefully(t *testing.T) {
	tr := New("http://127.0.0.1:1", nil)
	if frs, _ := tr.FetchBlocks(netsim.EU, []string{"cart"}, nil); frs != nil {
		t.Fatal("blocks from dead server")
	}
	ts := brokenServer(t, http.StatusOK, "{not json")
	tr2 := New(ts.URL, ts.Client())
	if frs, _ := tr2.FetchBlocks(netsim.EU, []string{"cart"}, nil); frs != nil {
		t.Fatal("blocks decoded from garbage")
	}
	ts400 := brokenServer(t, http.StatusBadRequest, "")
	tr3 := New(ts400.URL, ts400.Client())
	if frs, _ := tr3.FetchBlocks(netsim.EU, []string{"cart"}, nil); frs != nil {
		t.Fatal("blocks from 400")
	}
}

func TestRevalidateServerError(t *testing.T) {
	ts := brokenServer(t, http.StatusInternalServerError, "oops")
	tr := New(ts.URL, ts.Client())
	if _, err := tr.Revalidate(netsim.EU, "/x", 1); err == nil {
		t.Fatal("500 swallowed on revalidation")
	}
}

func TestSourceFromHeader(t *testing.T) {
	if sourceFromHeader("cdn") != proxy.SourceCDN ||
		sourceFromHeader("device") != proxy.SourceDevice ||
		sourceFromHeader("origin") != proxy.SourceOrigin ||
		sourceFromHeader("") != proxy.SourceOrigin {
		t.Fatal("source mapping wrong")
	}
}
