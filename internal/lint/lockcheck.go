package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// LockCheck enforces "// guarded by <mu>" field annotations: inside the
// struct's methods, an annotated field may only be touched while the named
// sibling mutex is held, and every Lock()/RLock() in non-test code needs a
// matching Unlock()/RUnlock() in the same function.
//
// The lock-state tracking is a source-order scan of each method body — a
// deliberate approximation that is exact for the lock idioms this repo
// uses (Lock…Unlock brackets and defer Unlock). Helper methods that are
// documented with "must hold" in their doc comment are assumed to run
// under the lock, mirroring the caller-holds convention in the runtime's
// own lock annotations.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc: "fields annotated '// guarded by <mu>' may only be accessed while " +
		"<mu> is held in the enclosing method, and every Lock needs a " +
		"matching Unlock in the same function",
	Run: runLockCheck,
}

var guardedByRe = regexp.MustCompile(`guarded by (\w+)`)

// guardedField records one annotation: struct S's field F is guarded by
// sibling mutex M.
type guardedSet map[string]map[string]string // struct name -> field -> mutex

func runLockCheck(pass *Pass) {
	guarded := collectGuarded(pass)
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockPairing(pass, fd)
			if fields := guarded[receiverTypeName(fd)]; len(fields) > 0 {
				checkGuardedAccess(pass, fd, fields)
			}
		}
	}
}

// collectGuarded scans struct declarations for "// guarded by <mu>"
// annotations on fields (doc comment or trailing line comment).
func collectGuarded(pass *Pass) guardedSet {
	guarded := guardedSet{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardAnnotation(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					m := guarded[ts.Name.Name]
					if m == nil {
						m = map[string]string{}
						guarded[ts.Name.Name] = m
					}
					m[name.Name] = mu
				}
			}
			return true
		})
	}
	return guarded
}

func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// receiverTypeName returns the base type name of fd's receiver, or "".
func receiverTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// checkLockPairing reports X.Lock() calls with no X.Unlock() anywhere in
// the same function (deferred or direct), and likewise for RLock/RUnlock.
// "All paths" is approximated by presence: a function that locks and never
// unlocks is wrong on every path.
func checkLockPairing(pass *Pass, fd *ast.FuncDecl) {
	type tally struct {
		lockPos, rlockPos ast.Node
		unlock, runlock   bool
	}
	tallies := map[string]*tally{}
	get := func(recv string) *tally {
		t := tallies[recv]
		if t == nil {
			t = &tally{}
			tallies[recv] = t
		}
		return t
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		recv := types.ExprString(sel.X)
		switch sel.Sel.Name {
		case "Lock":
			if t := get(recv); t.lockPos == nil {
				t.lockPos = sel
			}
		case "RLock":
			if t := get(recv); t.rlockPos == nil {
				t.rlockPos = sel
			}
		case "Unlock":
			get(recv).unlock = true
		case "RUnlock":
			get(recv).runlock = true
		}
		return true
	})
	for recv, t := range tallies {
		if t.lockPos != nil && !t.unlock {
			pass.Reportf(t.lockPos.Pos(),
				"%s.Lock() in %s has no matching Unlock (defer %s.Unlock() or unlock on every path)",
				recv, fd.Name.Name, recv)
		}
		if t.rlockPos != nil && !t.runlock {
			pass.Reportf(t.rlockPos.Pos(),
				"%s.RLock() in %s has no matching RUnlock (defer %s.RUnlock() or unlock on every path)",
				recv, fd.Name.Name, recv)
		}
	}
}

// checkGuardedAccess walks fd's body in source order, tracking which
// mutexes are held, and reports guarded-field accesses made while the
// field's mutex is not held.
func checkGuardedAccess(pass *Pass, fd *ast.FuncDecl, fields map[string]string) {
	if len(fd.Recv.List[0].Names) == 0 {
		return // anonymous receiver: the method cannot touch fields
	}
	recvName := fd.Recv.List[0].Names[0].Name
	if recvName == "_" {
		return
	}

	held := map[string]bool{}
	// Helper methods that run under the caller's lock start with every
	// referenced mutex held. Two spellings mark that contract: a "Locked"
	// name suffix (the runtime's convention) or a doc comment saying the
	// caller must hold the lock.
	callerHolds := strings.HasSuffix(fd.Name.Name, "Locked") ||
		(fd.Doc != nil && strings.Contains(strings.ToLower(fd.Doc.Text()), "must hold"))
	if callerHolds {
		for _, mu := range fields {
			held[mu] = true
		}
	}
	// heldToReturn marks mutexes released only by a deferred unlock: held
	// for the rest of the function.
	heldToReturn := map[string]bool{}

	// Deferred unlock calls must not be treated as releasing at their
	// syntactic position.
	deferred := map[*ast.CallExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
		}
		return true
	})

	muOf := func(sel *ast.SelectorExpr) (string, bool) {
		// Matches recv.<mu>.Lock() shapes: sel.X must print as "recv.mu"
		// for some mutex guarding one of the annotated fields.
		inner, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return "", false
		}
		id, ok := inner.X.(*ast.Ident)
		if !ok || id.Name != recvName {
			return "", false
		}
		for _, mu := range fields {
			if inner.Sel.Name == mu {
				return mu, true
			}
		}
		return "", false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if sel, ok := n.Call.Fun.(*ast.SelectorExpr); ok {
				if mu, ok := muOf(sel); ok && (sel.Sel.Name == "Unlock" || sel.Sel.Name == "RUnlock") {
					heldToReturn[mu] = true
				}
			}
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			mu, ok := muOf(sel)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "Lock", "RLock":
				held[mu] = true
			case "Unlock", "RUnlock":
				if !deferred[n] {
					held[mu] = false
				}
			}
		case *ast.SelectorExpr:
			id, ok := n.X.(*ast.Ident)
			if !ok || id.Name != recvName {
				return true
			}
			mu, guarded := fields[n.Sel.Name]
			if !guarded {
				return true
			}
			if !held[mu] && !heldToReturn[mu] {
				pass.Reportf(n.Pos(),
					"%s.%s is guarded by %s but accessed in %s without holding it",
					recvName, n.Sel.Name, mu, fd.Name.Name)
			}
		}
		return true
	})
}
