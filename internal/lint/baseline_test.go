package lint

import (
	"encoding/json"
	"go/token"
	"path/filepath"
	"testing"
)

func diagAt(file string, line int, analyzer, msg string) Diagnostic {
	return Diagnostic{
		Pos:      token.Position{Filename: file, Line: line},
		Analyzer: analyzer,
		Message:  msg,
	}
}

func TestBaselineSplitMultiset(t *testing.T) {
	b := &Baseline{Findings: []BaselineEntry{
		{Analyzer: "piiflow", File: "a.go", Message: "leak"},          // absorbs one
		{Analyzer: "lockcheck", File: "b.go", Message: "m", Count: 2}, // absorbs two
		{Analyzer: "piiflow", File: "gone.go", Message: "fixed leak"}, // stale: matches nothing
	}}
	diags := []Diagnostic{
		diagAt("a.go", 10, "piiflow", "leak"),   // baselined
		diagAt("a.go", 90, "piiflow", "leak"),   // fresh: count exhausted (line ignored)
		diagAt("b.go", 5, "lockcheck", "m"),     // baselined
		diagAt("b.go", 6, "lockcheck", "m"),     // baselined
		diagAt("c.go", 1, "piiflow", "other"),   // fresh: no entry
		diagAt("a.go", 10, "lockcheck", "leak"), // fresh: analyzer differs
	}
	fresh, baselined := b.Split(diags)
	if len(fresh) != 3 || len(baselined) != 3 {
		t.Fatalf("got %d fresh, %d baselined; want 3 and 3\nfresh: %v", len(fresh), len(baselined), fresh)
	}
	if fresh[0].Pos.Line != 90 {
		t.Errorf("fresh[0] = %v, want the second a.go leak (count exhausted)", fresh[0])
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lint.baseline.json")
	diags := []Diagnostic{
		diagAt("x/y.go", 3, "piiflow", "leak"),
		diagAt("x/y.go", 8, "piiflow", "leak"), // same key: collapses to Count 2
		diagAt("x/z.go", 1, "obslabels", "bad label"),
	}
	if err := WriteBaseline(path, diags); err != nil {
		t.Fatalf("WriteBaseline: %v", err)
	}
	b, err := ReadBaseline(path)
	if err != nil {
		t.Fatalf("ReadBaseline: %v", err)
	}
	if len(b.Findings) != 2 {
		t.Fatalf("round-tripped %d entries, want 2: %+v", len(b.Findings), b.Findings)
	}
	fresh, baselined := b.Split(diags)
	if len(fresh) != 0 || len(baselined) != 3 {
		t.Errorf("self-written baseline left %d fresh finding(s): %v", len(fresh), fresh)
	}
}

func TestBaselineMissingFileIsEmpty(t *testing.T) {
	b, err := ReadBaseline(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatalf("ReadBaseline on missing file: %v", err)
	}
	fresh, baselined := b.Split([]Diagnostic{diagAt("a.go", 1, "x", "m")})
	if len(fresh) != 1 || len(baselined) != 0 {
		t.Errorf("empty baseline should pass everything through as fresh")
	}
}

func TestRelativize(t *testing.T) {
	root := filepath.FromSlash("/mod")
	in := []Diagnostic{
		diagAt(filepath.FromSlash("/mod/internal/a.go"), 1, "x", "m"),
		diagAt(filepath.FromSlash("/elsewhere/b.go"), 2, "x", "m"),
	}
	out := Relativize(in, root)
	if out[0].Pos.Filename != "internal/a.go" {
		t.Errorf("in-module path = %q, want internal/a.go", out[0].Pos.Filename)
	}
	if out[1].Pos.Filename != filepath.FromSlash("/elsewhere/b.go") {
		t.Errorf("out-of-module path rewritten to %q", out[1].Pos.Filename)
	}
}

func TestSARIFShape(t *testing.T) {
	fresh := []Diagnostic{diagAt("internal/a.go", 7, "piiflow", "leak")}
	baselined := []Diagnostic{diagAt("internal/b.go", 9, "obslabels", "label")}
	data, err := SARIF(Analyzers(), fresh, baselined)
	if err != nil {
		t.Fatalf("SARIF: %v", err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID        string `json:"ruleId"`
				BaselineState string `json:"baselineState"`
				Locations     []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version %q, %d runs; want 2.1.0 and 1 run", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "speedkit-lint" || len(run.Tool.Driver.Rules) != len(Analyzers()) {
		t.Errorf("driver %q with %d rules, want speedkit-lint with %d",
			run.Tool.Driver.Name, len(run.Tool.Driver.Rules), len(Analyzers()))
	}
	if len(run.Results) != 2 {
		t.Fatalf("%d results, want 2", len(run.Results))
	}
	if run.Results[0].BaselineState != "new" || run.Results[1].BaselineState != "unchanged" {
		t.Errorf("baselineStates = %q, %q; want new, unchanged",
			run.Results[0].BaselineState, run.Results[1].BaselineState)
	}
	loc := run.Results[0].Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/a.go" || loc.Region.StartLine != 7 {
		t.Errorf("location = %s:%d, want internal/a.go:7", loc.ArtifactLocation.URI, loc.Region.StartLine)
	}
}
