package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"speedkit/internal/clock"
)

// Span is one timed step inside a trace: a sketch fetch, the shell
// fetch, the personalized-block round trip, a CDN purge. Durations are
// whatever the injected clock measures — simulated latency in the
// experiment harness, wall time on a real server.
type Span struct {
	// Name identifies the step ("sketch.fetch", "shell.fetch",
	// "blocks.fetch", "cdn.purge", ...).
	Name string `json:"name"`
	// Tier is the infrastructure layer the step ran against:
	// "device", "cdn", "origin", or "pipeline".
	Tier string `json:"tier"`
	// Duration is the step's cost in nanoseconds.
	Duration time.Duration `json:"duration_ns"`
}

// Trace is one sampled request (a page load, an HTTP page fetch, or an
// invalidation-pipeline run). A nil *Trace is the unsampled case: every
// method is a nil-safe no-op, so instrumented code records
// unconditionally and pays nothing when its request was not drawn.
//
// A trace is owned by the single request goroutine until Finish hands it
// to the ring buffer, after which it must not be mutated.
//
// Traces deliberately have nowhere to put identity: no user field, no
// session, no cookie. Paths and serve sources are anonymous under the
// gdpr field classification, which is what makes /debug/traces safe to
// expose.
type Trace struct {
	// ID orders traces; it is the sampling sequence number that drew them.
	ID uint64 `json:"id"`
	// Kind is the request class: "page_load", "http.page", "invalidation".
	Kind string `json:"kind"`
	// Path is the (anonymous) resource the request was for.
	Path string `json:"path"`
	// Start is the clock reading when the trace began.
	Start time.Time `json:"start"`
	// Source is the tier that served the shell ("device", "cdn",
	// "origin"), empty for non-serving traces.
	Source string `json:"source,omitempty"`
	// SketchGeneration is the generation of the sketch snapshot consulted
	// at decision time.
	SketchGeneration uint64 `json:"sketch_generation"`
	// SketchAge is how old that snapshot was at decision time.
	SketchAge time.Duration `json:"sketch_age_ns"`
	// DeltaBudget is the fraction of the Δ staleness budget the snapshot
	// had consumed at decision time (SketchAge/Δ; 0 when Δ is unknown).
	DeltaBudget float64 `json:"delta_budget"`
	// SketchRefreshed, Revalidated, Offline mirror the per-load protocol
	// outcomes.
	SketchRefreshed bool `json:"sketch_refreshed,omitempty"`
	Revalidated     bool `json:"revalidated,omitempty"`
	Offline         bool `json:"offline,omitempty"`
	// Degraded names the first degradation-ladder rung this load took
	// (empty for full-protocol loads).
	Degraded string `json:"degraded,omitempty"`
	// Blocks is the number of dynamic blocks personalized for the load;
	// BlockLatency is the cost of producing them (block-level
	// personalization latency).
	Blocks       int           `json:"blocks,omitempty"`
	BlockLatency time.Duration `json:"block_latency_ns,omitempty"`
	// Total is the end-to-end request cost.
	Total time.Duration `json:"total_ns"`
	// Spans are the timed steps, in recording order.
	Spans []Span `json:"spans,omitempty"`
}

// AddSpan appends a timed step. No-op on a nil (unsampled) trace.
func (tr *Trace) AddSpan(name, tier string, d time.Duration) {
	if tr == nil {
		return
	}
	tr.Spans = append(tr.Spans, Span{Name: name, Tier: tier, Duration: d})
}

// SetSource records the serving tier.
func (tr *Trace) SetSource(source string) {
	if tr == nil {
		return
	}
	tr.Source = source
}

// SetSketch records the sketch snapshot state consulted at decision
// time: its generation, its age, and the Δ it is budgeted against.
func (tr *Trace) SetSketch(generation uint64, age, delta time.Duration) {
	if tr == nil {
		return
	}
	tr.SketchGeneration = generation
	tr.SketchAge = age
	if delta > 0 {
		tr.DeltaBudget = float64(age) / float64(delta)
	}
}

// SetBlocks records the personalization outcome.
func (tr *Trace) SetBlocks(n int, latency time.Duration) {
	if tr == nil {
		return
	}
	tr.Blocks = n
	tr.BlockLatency = latency
}

// SetTotal records the end-to-end cost.
func (tr *Trace) SetTotal(d time.Duration) {
	if tr == nil {
		return
	}
	tr.Total = d
}

// MarkSketchRefreshed notes that the load refreshed the sketch.
func (tr *Trace) MarkSketchRefreshed() {
	if tr == nil {
		return
	}
	tr.SketchRefreshed = true
}

// MarkRevalidated notes that the sketch forced a revalidation.
func (tr *Trace) MarkRevalidated() {
	if tr == nil {
		return
	}
	tr.Revalidated = true
}

// MarkOffline notes that the load was served from the device cache with
// the network unreachable.
func (tr *Trace) MarkOffline() {
	if tr == nil {
		return
	}
	tr.Offline = true
}

// MarkDegraded records the degradation reason; the first reason set
// wins, matching the PageLoad semantics.
func (tr *Trace) MarkDegraded(reason string) {
	if tr == nil || tr.Degraded != "" {
		return
	}
	tr.Degraded = reason
}

// TracerStats counts tracer activity.
type TracerStats struct {
	// Started counts requests that consulted the sampler while sampling
	// was enabled.
	Started uint64
	// Sampled counts requests that were drawn and allocated a Trace.
	Sampled uint64
}

// Tracer draws a deterministic 1-in-N sample of requests and keeps the
// most recent finished traces in a fixed ring buffer. A nil *Tracer is
// fully disabled: Start returns nil at the cost of a nil check, and every
// other method is a no-op, so components take a *Tracer without caring
// whether tracing is deployed.
//
// Start on a live tracer is one atomic add and a modulo; the unsampled
// outcome allocates nothing. The AllocsPerRun tests pin this.
type Tracer struct {
	clk clock.Clock
	// sampleEvery is the sampling knob: 0 disables, 1 traces every
	// request, N traces one in N. Mutable at runtime via SetSampleEvery.
	sampleEvery atomic.Uint64
	seq         atomic.Uint64
	sampled     atomic.Uint64

	mu   sync.Mutex
	ring []*Trace // guarded by mu
	next int      // guarded by mu
}

// NewTracer creates a tracer reading time from clk (default the coarse
// system clock), sampling one request in sampleEvery (0 disables), and
// retaining the last ringSize finished traces (default 256).
func NewTracer(clk clock.Clock, sampleEvery int, ringSize int) *Tracer {
	if clk == nil {
		clk = clock.CoarseSystem
	}
	if ringSize <= 0 {
		ringSize = 256
	}
	t := &Tracer{clk: clk, ring: make([]*Trace, 0, ringSize)}
	if sampleEvery > 0 {
		t.sampleEvery.Store(uint64(sampleEvery))
	}
	return t
}

// SetSampleEvery changes the sampling rate: 0 disables, 1 traces
// everything, N traces one request in N. Safe to call while serving.
func (t *Tracer) SetSampleEvery(n int) {
	if t == nil {
		return
	}
	if n < 0 {
		n = 0
	}
	t.sampleEvery.Store(uint64(n))
}

// SampleEvery returns the current sampling knob (0 = disabled).
func (t *Tracer) SampleEvery() int {
	if t == nil {
		return 0
	}
	return int(t.sampleEvery.Load())
}

// Start draws the sampling decision for one request. It returns nil —
// the free, allocation-less outcome — when the tracer is nil, disabled,
// or the request was not drawn; otherwise it allocates and stamps a
// Trace the caller populates and hands to Finish.
func (t *Tracer) Start(kind, path string) *Trace {
	if t == nil {
		return nil
	}
	n := t.sampleEvery.Load()
	if n == 0 {
		return nil
	}
	id := t.seq.Add(1)
	if id%n != 0 {
		return nil
	}
	t.sampled.Add(1)
	return &Trace{ID: id, Kind: kind, Path: path, Start: t.clk.Now()}
}

// Finish publishes a populated trace into the ring buffer. The trace
// must not be mutated afterwards. No-op when either side is nil.
func (t *Tracer) Finish(tr *Trace) {
	if t == nil || tr == nil {
		return
	}
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, tr)
	} else {
		t.ring[t.next] = tr
	}
	t.next = (t.next + 1) % cap(t.ring)
	t.mu.Unlock()
}

// Recent returns up to n finished traces, newest first (all retained
// traces for n <= 0). The slice is a fresh copy; the traces themselves
// are shared and immutable once finished.
func (t *Tracer) Recent(n int) []*Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	total := len(t.ring)
	if n <= 0 || n > total {
		n = total
	}
	out := make([]*Trace, 0, n)
	// t.next is the slot the *next* finish will take, so the newest
	// finished trace sits just behind it.
	for i := 1; i <= n; i++ {
		idx := t.next - i
		if idx < 0 {
			idx += total
		}
		out = append(out, t.ring[idx])
	}
	return out
}

// Stats returns a copy of the tracer counters.
func (t *Tracer) Stats() TracerStats {
	if t == nil {
		return TracerStats{}
	}
	return TracerStats{Started: t.seq.Load(), Sampled: t.sampled.Load()}
}
