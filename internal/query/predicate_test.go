package query

import (
	"testing"
	"testing/quick"
)

var productDoc = map[string]any{
	"id":       "p1",
	"name":     "Trail Runner",
	"category": "shoes",
	"price":    89.90,
	"stock":    int64(12),
	"active":   true,
	"meta":     map[string]any{"brand": "Acme", "rating": 4.5},
}

func TestCmpOperators(t *testing.T) {
	cases := []struct {
		name string
		p    Predicate
		want bool
	}{
		{"eq string", Eq("category", "shoes"), true},
		{"eq string miss", Eq("category", "hats"), false},
		{"eq cross-numeric", Eq("stock", 12), true},
		{"eq float-int", Eq("price", 89.90), true},
		{"ne present", Ne("category", "hats"), true},
		{"ne equal", Ne("category", "shoes"), false},
		{"ne missing field matches", Ne("color", "red"), true},
		{"gt", Gt("price", 50), true},
		{"gt false", Gt("price", 100), false},
		{"gte boundary", Gte("price", 89.90), true},
		{"lt", Lt("stock", 100), true},
		{"lte boundary", Lte("stock", 12), true},
		{"lt missing field", Lt("nope", 1), false},
		{"gt non-comparable", Gt("name", 5), false},
		{"in hit", In("category", "hats", "shoes"), true},
		{"in miss", In("category", "hats", "belts"), false},
		{"in missing field", In("nope", "x"), false},
		{"exists", Exists("meta"), true},
		{"exists miss", Exists("nope"), false},
		{"prefix", Prefix("name", "Trail"), true},
		{"prefix miss", Prefix("name", "Road"), false},
		{"prefix non-string", Prefix("price", "8"), false},
		{"contains", Contains("name", "ail Ru"), true},
		{"contains miss", Contains("name", "xyz"), false},
		{"dotted path", Eq("meta.brand", "Acme"), true},
		{"dotted path gt", Gt("meta.rating", 4), true},
		{"dotted path missing", Eq("meta.nope", 1), false},
		{"dotted through scalar", Eq("name.x", 1), false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.p.Match(productDoc); got != c.want {
				t.Fatalf("%s.Match = %v, want %v", c.p.Canonical(), got, c.want)
			}
		})
	}
}

func TestJunctions(t *testing.T) {
	p := And{Eq("category", "shoes"), Lt("price", 100)}
	if !p.Match(productDoc) {
		t.Fatal("AND should match")
	}
	p2 := And{Eq("category", "shoes"), Gt("price", 100)}
	if p2.Match(productDoc) {
		t.Fatal("AND with false leg matched")
	}
	o := Or{Eq("category", "hats"), Eq("category", "shoes")}
	if !o.Match(productDoc) {
		t.Fatal("OR should match")
	}
	o2 := Or{Eq("category", "hats"), Eq("category", "belts")}
	if o2.Match(productDoc) {
		t.Fatal("OR with no true leg matched")
	}
	if !(Not{P: o2}).Match(productDoc) {
		t.Fatal("NOT failed")
	}
	if !(And{}).Match(productDoc) {
		t.Fatal("empty AND must match everything")
	}
	if (Or{}).Match(productDoc) {
		t.Fatal("empty OR must match nothing")
	}
	if !(True{}).Match(nil) {
		t.Fatal("True must match nil doc")
	}
}

func TestMatchNilDoc(t *testing.T) {
	if Eq("x", 1).Match(nil) {
		t.Fatal("Eq matched nil doc")
	}
	if !Ne("x", 1).Match(nil) {
		t.Fatal("Ne must match nil doc (field absent)")
	}
}

func TestCanonicalSortsOperands(t *testing.T) {
	a := And{Eq("a", 1), Eq("b", 2)}
	b := And{Eq("b", 2), Eq("a", 1)}
	if a.Canonical() != b.Canonical() {
		t.Fatalf("permuted ANDs differ: %s vs %s", a.Canonical(), b.Canonical())
	}
	i1 := In("f", "x", "y")
	i2 := In("f", "y", "x")
	if i1.Canonical() != i2.Canonical() {
		t.Fatalf("permuted INs differ: %s vs %s", i1.Canonical(), i2.Canonical())
	}
}

func TestCanonicalDistinguishes(t *testing.T) {
	pairs := [][2]Predicate{
		{Eq("a", 1), Eq("a", 2)},
		{Eq("a", 1), Ne("a", 1)},
		{Gt("a", 1), Gte("a", 1)},
		{Eq("a", "1"), Eq("a", 1)}, // string vs number must differ
		{And{Eq("a", 1)}, Or{Eq("a", 1)}},
	}
	for _, pr := range pairs {
		if pr[0].Canonical() == pr[1].Canonical() {
			t.Errorf("distinct predicates share canonical form: %s", pr[0].Canonical())
		}
	}
}

func TestFieldsCollection(t *testing.T) {
	p := And{Eq("a", 1), Or{Gt("b", 2), Not{P: Exists("c.d")}}}
	got := map[string]struct{}{}
	p.Fields(got)
	for _, f := range []string{"a", "b", "c.d"} {
		if _, ok := got[f]; !ok {
			t.Errorf("missing field %s", f)
		}
	}
	if len(got) != 3 {
		t.Errorf("extra fields: %v", got)
	}
}

func TestNumericCoercionProperty(t *testing.T) {
	// Property: for any int64 v, a doc {x: v} matches Eq("x", float64(v))
	// and ordering predicates behave consistently with float comparison.
	f := func(v int32, w int32) bool {
		doc := map[string]any{"x": int64(v)}
		if !Eq("x", float64(v)).Match(doc) {
			return false
		}
		gt := Gt("x", int64(w)).Match(doc)
		return gt == (v > w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCanonicalForms(t *testing.T) {
	cases := []struct {
		p    Predicate
		want string
	}{
		{Eq("a", "x"), `a = "x"`},
		{Eq("a", nil), `a = null`},
		{Eq("a", true), `a = true`},
		{Eq("a", int64(5)), `a = 5`},
		{Eq("a", 2.5), `a = 2.5`},
		{Exists("f"), `EXISTS(f)`},
		{Prefix("f", "p"), `f PREFIX "p"`},
		{Contains("f", "s"), `f CONTAINS "s"`},
		{Not{P: Eq("a", 1)}, `NOT(a = 1)`},
		{True{}, `TRUE`},
		{And{}, `TRUE`},
		{Or{}, `FALSE`},
		{Or{Eq("a", 1), Eq("b", 2)}, `OR(a = 1;b = 2)`},
	}
	for _, c := range cases {
		if got := c.p.Canonical(); got != c.want {
			t.Errorf("Canonical = %q, want %q", got, c.want)
		}
	}
}

func TestOrNotTrueFields(t *testing.T) {
	got := map[string]struct{}{}
	Or{Eq("a", 1), Not{P: Eq("b", 2)}}.Fields(got)
	(True{}).Fields(got)
	if len(got) != 2 {
		t.Fatalf("fields = %v", got)
	}
}

func TestNumericCoercionAllWidths(t *testing.T) {
	doc := map[string]any{
		"i": int(1), "i8": int8(1), "i16": int16(1), "i32": int32(1), "i64": int64(1),
		"u": uint(1), "u8": uint8(1), "u16": uint16(1), "u32": uint32(1), "u64": uint64(1),
		"f32": float32(1), "f64": float64(1),
	}
	for field := range doc {
		if !Eq(field, 1.0).Match(doc) {
			t.Errorf("Eq(%s, 1.0) failed across width coercion", field)
		}
		if !Gte(field, 1).Match(doc) || Lt(field, 1).Match(doc) {
			t.Errorf("ordering on %s wrong", field)
		}
	}
	// Non-numeric vs numeric never equal.
	if Eq("s", 1).Match(map[string]any{"s": "1"}) {
		t.Error("string '1' equals number 1")
	}
	if Eq("b", 1).Match(map[string]any{"b": true}) {
		t.Error("bool equals number")
	}
}

func TestOpStringUnknown(t *testing.T) {
	if Op(99).String() == "" {
		t.Fatal("unknown op renders empty")
	}
	if OpEq.String() != "=" {
		t.Fatalf("OpEq = %q", OpEq.String())
	}
}
