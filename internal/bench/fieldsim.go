// Package bench implements the experiment harness: one function per table
// and figure of the reconstructed evaluation (see DESIGN.md's
// per-experiment index). Each function runs a deterministic simulation and
// returns a typed result whose String method prints the same rows or
// series the corresponding artifact reports. The root-level bench_test.go
// and cmd/speedkit-bench both drive these functions.
package bench

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"speedkit/internal/clock"
	"speedkit/internal/core"
	"speedkit/internal/durable"
	"speedkit/internal/faults"
	"speedkit/internal/metrics"
	"speedkit/internal/netsim"
	"speedkit/internal/proxy"
	"speedkit/internal/session"
	"speedkit/internal/ttl"
	"speedkit/internal/workload"
)

// ClientMode selects which delivery architecture the simulated devices
// use.
type ClientMode int

// Delivery architectures under comparison.
const (
	// ModeSpeedKit is the full system: client proxy, sketch coherence,
	// CDN, adaptive TTLs, on-device personalization.
	ModeSpeedKit ClientMode = iota
	// ModeDirect is the no-caching control arm: every load hits the
	// origin.
	ModeDirect
	// ModeLegacy is a traditional personalizing CDN: per-user cache keys,
	// fixed TTLs, cookies crossing the CDN boundary.
	ModeLegacy
	// ModeTTLOnly is a shared-cache CDN without the coherence protocol:
	// anonymous shells cached under fixed TTLs, no sketch, no purges.
	ModeTTLOnly
)

// String names the mode.
func (m ClientMode) String() string {
	switch m {
	case ModeSpeedKit:
		return "speedkit"
	case ModeDirect:
		return "direct"
	case ModeLegacy:
		return "legacy-cdn"
	case ModeTTLOnly:
		return "ttl-only"
	}
	return "unknown"
}

// FieldConfig parameterizes one simulated deployment under load.
type FieldConfig struct {
	Mode ClientMode
	// Seed drives workload, catalog, and network determinism.
	Seed int64
	// Ops is the number of workload operations to execute.
	Ops int
	// Users is the device population (default 90, spread over regions).
	Users int
	// Products is the catalog size (default 500).
	Products int
	// Delta is the coherence bound for Speed Kit devices (default 60s).
	Delta time.Duration
	// TTLSource overrides the service TTL policy (nil = adaptive for
	// Speed Kit, static 60s for baselines).
	TTLSource ttl.TTLSource
	// WriteFraction is the workload's backend write share (default 0.02).
	WriteFraction float64
	// Diurnal enables the day/night load curve.
	Diurnal bool
	// MeanOpsPerSecond sets simulated load (default 50).
	MeanOpsPerSecond float64
	// BounceModel makes slow loads abort sessions when true (used by the
	// A/B conversion experiment).
	BounceModel bool
	// Trace, when non-nil, replays this exact op stream instead of
	// generating one (see workload.ReadTrace). Ops is ignored; UserIdx
	// values must be < Users.
	Trace []workload.Op
	// PrefetchLinks enables link prefetching on Speed Kit devices.
	PrefetchLinks int
	// FaultRules, when non-empty, installs a deterministic fault injector
	// over the service transports and the invalidation pipeline (chaos
	// mode). Loads that exhaust the degradation ladder are then counted
	// in FailedLoads instead of aborting the run.
	FaultRules []faults.Rule
	// FaultSeed seeds the injector (default Seed+500), so the fault
	// schedule is reproducible independently of the workload stream.
	FaultSeed int64
	// DeviceResilience parameterizes the devices' retry/backoff/breaker
	// layer (zero value = proxy defaults).
	DeviceResilience proxy.ResilienceConfig
	// DataDir, when non-empty, enables the durability subsystem: the
	// service journals coherence state there, recovers from it at startup,
	// and — whenever an injected fault kills the store mid-run — recovers
	// again in place, the in-process analogue of a process restart. Crash
	// faults come from FaultRules targeting the WAL/snapshot components
	// (see faults.CrashRules).
	DataDir string
	// SnapshotEvery passes through to durable.Config (0 = its default).
	SnapshotEvery int
	// BlindHorizon is how long post-crash recovery blind-tracks writes to
	// unknown resources. It must cover the longest TTL a pre-crash cache
	// fill could have been issued, or a lost report can hide a stale copy
	// past Δ (default 24h, the adaptive estimator's cap).
	BlindHorizon time.Duration
}

func (c *FieldConfig) applyDefaults() {
	if c.Ops <= 0 {
		c.Ops = 20000
	}
	if c.Users <= 0 {
		c.Users = 90
	}
	if c.Products <= 0 {
		c.Products = 500
	}
	if c.Delta <= 0 {
		c.Delta = 60 * time.Second
	}
	if c.WriteFraction == 0 {
		c.WriteFraction = 0.02
	}
	if c.MeanOpsPerSecond <= 0 {
		c.MeanOpsPerSecond = 50
	}
	if c.BlindHorizon <= 0 {
		c.BlindHorizon = 24 * time.Hour
	}
}

// FieldResult aggregates one simulated deployment run.
type FieldResult struct {
	Mode ClientMode
	// Latency histograms, overall and per serving tier / region
	// (microsecond values).
	Latency         *metrics.Histogram
	LatencyByTier   map[proxy.Source]*metrics.Histogram
	LatencyByRegion map[netsim.Region]*metrics.Histogram
	// Loads per tier.
	TierCounts map[proxy.Source]uint64
	// Consistency. MaxStaleness covers connected serving only — the loads
	// the Δ bound applies to. Offline-shell serves (PageLoad.Offline) are
	// the explicit partition fallback where no staleness bound is
	// achievable; they are tallied separately below.
	Loads        uint64
	StaleReads   uint64
	MaxStaleness time.Duration
	// OfflineServes counts offline-shell loads; OfflineMaxStaleness is
	// the worst staleness among them (unbounded by design).
	OfflineServes       uint64
	OfflineMaxStaleness time.Duration
	// Funnel outcomes.
	Checkouts uint64
	Bounces   uint64
	// Sketch traffic (Speed Kit only).
	SketchRefreshes uint64
	SketchBytes     int
	// Revalidations and NotModified aggregate the devices' coherence
	// traffic; NotModified counts the 304-equivalents where only headers
	// travelled (Speed Kit only).
	Revalidations uint64
	NotModified   uint64
	// Service handle for post-run inspection (auditor, CDN stats, ...).
	Service *core.Service
	// SimulatedDuration is how much virtual time the run covered.
	SimulatedDuration time.Duration
	// Faults is the injector handle (nil unless FaultRules were set):
	// schedule, hash, and per-component rates for chaos assertions.
	Faults *faults.Injector
	// FailedLoads counts loads that failed even after the degradation
	// ladder (chaos mode tolerates them; they never serve stale bytes).
	FailedLoads uint64
	// DegradedLoads counts served loads per degradation rung.
	DegradedLoads map[proxy.DegradeReason]uint64
	// Recovery is how the durable store rebuilt state at startup (zero
	// when DataDir was empty — the run was memory-only).
	Recovery durable.RecoveryInfo
	// Crashes counts injected durability kills recovered in place;
	// RecoveryModes tallies every recovery (startup included) by mode.
	Crashes       uint64
	RecoveryModes map[string]uint64
	// DurableStats is the durability layer's final counter snapshot,
	// captured after the clean shutdown that ends the run.
	DurableStats durable.Stats
}

// HitRatio returns the share of loads served without an origin fetch.
func (r *FieldResult) HitRatio() float64 {
	cached := r.TierCounts[proxy.SourceDevice] + r.TierCounts[proxy.SourceCDN]
	if r.Loads == 0 {
		return 0
	}
	return float64(cached) / float64(r.Loads)
}

// StaleRate returns the share of loads that returned stale content.
func (r *FieldResult) StaleRate() float64 {
	if r.Loads == 0 {
		return 0
	}
	return float64(r.StaleReads) / float64(r.Loads)
}

// RunField executes one deployment simulation.
func RunField(cfg FieldConfig) (*FieldResult, error) {
	cfg.applyDefaults()
	clk := clock.NewSimulated(time.Time{})

	svcCfg := core.Config{
		Clock: clk,
		Seed:  cfg.Seed,
		Delta: cfg.Delta,
	}
	svcCfg.PrefetchLinks = cfg.PrefetchLinks
	var inj *faults.Injector
	if len(cfg.FaultRules) > 0 {
		seed := cfg.FaultSeed
		if seed == 0 {
			seed = cfg.Seed + 500
		}
		inj = faults.New(clk, seed, cfg.FaultRules...)
		svcCfg.Faults = inj
		svcCfg.DeviceResilience = cfg.DeviceResilience
	}
	var store *durable.Store
	if cfg.DataDir != "" {
		store = durable.New(durable.Config{
			Dir:           cfg.DataDir,
			Clock:         clk,
			Faults:        inj,
			SnapshotEvery: cfg.SnapshotEvery,
			ColdWindow:    cfg.Delta,
			BlindHorizon:  cfg.BlindHorizon,
		})
		svcCfg.Durable = store
	}
	switch cfg.Mode {
	case ModeSpeedKit:
		svcCfg.TTLSource = cfg.TTLSource // nil → adaptive
	case ModeTTLOnly:
		svcCfg.DisableInvalidation = true
		svcCfg.DisableSketchOnDevices = true
		svcCfg.TTLSource = cfg.TTLSource
		if svcCfg.TTLSource == nil {
			svcCfg.TTLSource = ttl.Static(60 * time.Second)
		}
	default:
		svcCfg.TTLSource = ttl.Static(60 * time.Second)
	}

	svc, err := core.NewStorefront(core.StorefrontConfig{
		Config:   svcCfg,
		Products: cfg.Products,
	})
	if err != nil {
		return nil, err
	}
	defer svc.Close()
	var recoveryModes map[string]uint64
	var startupRecovery durable.RecoveryInfo
	if store != nil {
		info, rerr := svc.Recovery()
		if rerr != nil {
			return nil, rerr
		}
		startupRecovery = info
		recoveryModes = map[string]uint64{info.Mode.String(): 1}
	}

	users := session.Population(cfg.Seed, cfg.Users)
	devices := make([]*proxy.Proxy, len(users))
	for i, u := range users {
		devices[i] = svc.NewDevice(u, u.Region)
	}

	// nextOp supplies the op stream: a trace replay or a live generator.
	var nextOp func() (workload.Op, bool)
	var elapsed time.Duration
	if cfg.Trace != nil {
		trace := cfg.Trace
		i := 0
		nextOp = func() (workload.Op, bool) {
			if i >= len(trace) {
				return workload.Op{}, false
			}
			op := trace[i]
			i++
			elapsed += op.Gap
			return op, true
		}
		cfg.Ops = len(trace)
	} else {
		gen := workload.NewGenerator(workload.Config{
			Seed:             cfg.Seed + 100,
			Products:         cfg.Products,
			Users:            cfg.Users,
			WriteFraction:    cfg.WriteFraction,
			Diurnal:          cfg.Diurnal,
			MeanOpsPerSecond: cfg.MeanOpsPerSecond,
		})
		nextOp = func() (workload.Op, bool) {
			op := gen.Next()
			elapsed = gen.Elapsed()
			return op, true
		}
	}
	writeRng := rand.New(rand.NewSource(cfg.Seed + 200))
	bounceRng := rand.New(rand.NewSource(cfg.Seed + 300))

	res := &FieldResult{
		Mode:            cfg.Mode,
		Latency:         metrics.NewHistogram(),
		LatencyByTier:   map[proxy.Source]*metrics.Histogram{},
		LatencyByRegion: map[netsim.Region]*metrics.Histogram{},
		TierCounts:      map[proxy.Source]uint64{},
		Service:         svc,
		Faults:          inj,
		DegradedLoads:   map[proxy.DegradeReason]uint64{},
		Recovery:        startupRecovery,
		RecoveryModes:   recoveryModes,
	}
	for _, src := range []proxy.Source{proxy.SourceDevice, proxy.SourceCDN, proxy.SourceOrigin} {
		res.LatencyByTier[src] = metrics.NewHistogram()
	}
	for _, rg := range netsim.Regions() {
		res.LatencyByRegion[rg] = metrics.NewHistogram()
	}
	bounced := make([]bool, len(users))

	ctx := context.Background()
	load := func(idx int, path string) error {
		u := users[idx]
		var lat time.Duration
		var src proxy.Source
		var version uint64
		var offline bool
		switch cfg.Mode {
		case ModeSpeedKit, ModeTTLOnly:
			pl, err := devices[idx].Load(ctx, path)
			if err != nil {
				// Under chaos, loads that fail even after the degradation
				// ladder are an expected outcome — counted, never served
				// stale. Anything outside the typed failure families is
				// still a bug and aborts the run.
				if inj != nil && (errors.Is(err, proxy.ErrOffline) ||
					errors.Is(err, proxy.ErrDegraded) || errors.Is(err, proxy.ErrUpstream)) {
					res.FailedLoads++
					return nil
				}
				return err
			}
			if pl.Degraded != proxy.DegradeNone {
				res.DegradedLoads[pl.Degraded]++
			}
			if pl.Offline {
				offline = true
				res.OfflineServes++
			}
			lat, src, version = pl.Latency, pl.Source, pl.Version
			if pl.SketchRefreshed {
				res.SketchRefreshes++
			}
		case ModeDirect:
			br, err := svc.LoadDirect(u, u.Region, path)
			if err != nil {
				return err
			}
			lat, src, version = br.Latency, br.Source, br.Version
		case ModeLegacy:
			//lint:ignore piiflow measuring the legacy (non-compliant) baseline is the experiment's point
			br, err := svc.LoadLegacy(u, u.Region, path)
			if err != nil {
				return err
			}
			lat, src, version = br.Latency, br.Source, br.Version
		}
		res.Loads++
		res.TierCounts[src]++
		us := float64(lat.Microseconds())
		res.Latency.Observe(us)
		res.LatencyByTier[src].Observe(us)
		res.LatencyByRegion[u.Region].Observe(us)

		if stale := svc.VersionLog().Staleness(path, version, clk.Now()); stale > 0 {
			if offline {
				if stale > res.OfflineMaxStaleness {
					res.OfflineMaxStaleness = stale
				}
			} else {
				res.StaleReads++
				if stale > res.MaxStaleness {
					res.MaxStaleness = stale
				}
			}
		}
		if cfg.BounceModel {
			if p := bounceProbability(lat); p > 0 && bounceRng.Float64() < p {
				bounced[idx] = true
				users[idx].ClearCart()
				res.Bounces++
			}
		}
		return nil
	}

	for i := 0; i < cfg.Ops; i++ {
		op, ok := nextOp()
		if !ok {
			break
		}
		if op.UserIdx >= len(users) {
			return nil, fmt.Errorf("bench: trace op %d references user %d beyond population %d",
				i, op.UserIdx, len(users))
		}
		clk.Advance(op.Gap)
		switch op.Kind {
		case workload.ViewHome, workload.ViewCategory, workload.ViewProduct:
			if op.Kind == workload.ViewHome {
				bounced[op.UserIdx] = false // new session attempt
			}
			if bounced[op.UserIdx] {
				continue // user left; the rest of the session is lost
			}
			if err := load(op.UserIdx, op.Path); err != nil {
				return nil, err
			}
			if op.Kind == workload.ViewProduct {
				users[op.UserIdx].RecordView(op.ProductID)
			}
		case workload.AddToCart:
			if !bounced[op.UserIdx] {
				users[op.UserIdx].AddToCart(op.ProductID, 1)
			}
		case workload.Checkout:
			if !bounced[op.UserIdx] && users[op.UserIdx].CartSize() > 0 {
				users[op.UserIdx].ClearCart()
				res.Checkouts++
			}
		case workload.UpdatePrice, workload.UpdateStock:
			if _, err := workload.ApplyWrite(svc.Docs(), writeRng, op); err != nil {
				return nil, err
			}
		}
		// An injected durability kill flips the store dead mid-op; the
		// in-place recovery below is the process restart: memory is reset
		// and rebuilt from the snapshot plus whatever WAL tail survived,
		// with the conservative cold start covering what did not.
		if store != nil && store.Crashed() {
			info, rerr := svc.RecoverDurable()
			if rerr != nil {
				return nil, fmt.Errorf("bench: crash recovery after op %d: %w", i, rerr)
			}
			res.Crashes++
			res.RecoveryModes[info.Mode.String()]++
		}
	}
	res.SketchBytes = svc.SketchServer().SketchBytes()
	res.SimulatedDuration = elapsed
	for _, dev := range devices {
		st := dev.Stats()
		res.Revalidations += st.Revalidations
		res.NotModified += st.NotModified
	}
	if store != nil {
		// Graceful shutdown: seal the log with the clean marker so the next
		// run over this directory restarts warm. A store left dead by a
		// crash in the run's final ops stays torn on disk — exactly what a
		// later recovery must see.
		if err := store.Close(); err != nil && !errors.Is(err, faults.ErrCrash) {
			return nil, err
		}
		res.DurableStats = store.Stats()
	}
	return res, nil
}

// bounceProbability maps page-load latency to the chance the user leaves:
// zero below 150 ms, rising linearly to 35% at 1.5 s and capped there.
// The shape follows published bounce-rate-vs-load-time field studies,
// with the knee scaled to this simulation's latency regime (shell-only
// loads; a real page multiplies these by its asset count).
func bounceProbability(lat time.Duration) float64 {
	const floor = 150 * time.Millisecond
	const ceil = 1500 * time.Millisecond
	if lat <= floor {
		return 0
	}
	p := 0.35 * float64(lat-floor) / float64(ceil-floor)
	if p > 0.35 {
		p = 0.35
	}
	return p
}
