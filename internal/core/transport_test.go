package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"speedkit/internal/netsim"
	"speedkit/internal/proxy"
	"speedkit/internal/session"
)

func TestServiceRevalidateNotModified(t *testing.T) {
	svc, _ := newTestStorefront(t)
	// Prime the version log and caches.
	if _, _, _, err := svc.Fetch(context.Background(), netsim.EU, "/product/p00001"); err != nil {
		t.Fatal(err)
	}
	rr, err := svc.Revalidate(context.Background(), netsim.EU, "/product/p00001", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rr.NotModified {
		t.Fatal("unchanged version not 304")
	}
	if len(rr.Entry.Body) != 0 {
		t.Fatal("304 carried a body")
	}
	if rr.Entry.ExpiresAt.IsZero() {
		t.Fatal("304 did not renew expiration")
	}
	// The renewed residency is visible to the sketch server: a write now
	// must track the resource until the renewed expiry.
	_ = svc.Docs().Patch("products", "p00001", map[string]any{"stock": int64(1)})
	if !svc.SketchServer().Contains("/product/p00001") {
		t.Fatal("renewed residency not reported to sketch server")
	}
}

func TestServiceRevalidateModifiedBypassesStaleEdge(t *testing.T) {
	svc, _ := newTestStorefront(t)
	if _, _, _, err := svc.Fetch(context.Background(), netsim.EU, "/product/p00002"); err != nil {
		t.Fatal(err)
	}
	// Write; do NOT advance the clock, so the CDN purge has not
	// propagated and the edge still holds v1.
	_ = svc.Docs().Patch("products", "p00002", map[string]any{"price": 3.33})
	if _, ok := svc.CDN().Edge(netsim.EU).Lookup("/product/p00002"); !ok {
		t.Skip("edge already purged; propagation-window scenario not reproducible")
	}
	rr, err := svc.Revalidate(context.Background(), netsim.EU, "/product/p00002", 1)
	if err != nil {
		t.Fatal(err)
	}
	if rr.NotModified {
		t.Fatal("changed version reported unmodified")
	}
	if rr.Entry.Version != 2 {
		t.Fatalf("revalidation served v%d from the stale edge", rr.Entry.Version)
	}
	if !strings.Contains(string(rr.Entry.Body), "3.33") {
		t.Fatal("revalidation body stale")
	}
}

func TestRevalidationServedByFresherEdgeCopy(t *testing.T) {
	svc, clk := newTestStorefront(t)
	path := "/product/p00004"
	if _, _, _, err := svc.Fetch(context.Background(), netsim.EU, path); err != nil {
		t.Fatal(err)
	}
	_ = svc.Docs().Patch("products", "p00004", map[string]any{"price": 5.55})
	clk.Advance(20 * time.Millisecond) // purge propagates; edge empty

	// First revalidation falls through to the origin and refills the edge.
	rr, err := svc.Revalidate(context.Background(), netsim.EU, path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Source != proxy.SourceOrigin || rr.Entry.Version != 2 {
		t.Fatalf("first revalidation: %+v", rr)
	}
	// Subsequent revalidations from clients still holding v1 are answered
	// by the purge-maintained edge at edge latency — the behaviour that
	// keeps flagged-path traffic off the origin.
	rr, err = svc.Revalidate(context.Background(), netsim.EU, path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Source != proxy.SourceCDN || rr.Entry.Version != 2 {
		t.Fatalf("second revalidation: source=%v v%d, want CDN v2", rr.Source, rr.Entry.Version)
	}
}

func TestServiceRevalidateUnknownPath(t *testing.T) {
	svc, _ := newTestStorefront(t)
	if _, err := svc.Revalidate(context.Background(), netsim.EU, "/ghost", 1); err == nil {
		t.Fatal("unknown path revalidated")
	}
}

func TestServiceFetchBlocks(t *testing.T) {
	svc, _ := newTestStorefront(t)
	u := testUser()
	frs, lat, err := svc.FetchBlocks(context.Background(), netsim.APAC, []string{"cart", "greeting"}, u)
	if err != nil {
		t.Fatal(err)
	}
	if len(frs) != 2 {
		t.Fatalf("fragments = %v", frs)
	}
	if !strings.Contains(string(frs["cart"]), "2 items") {
		t.Fatalf("cart = %s", frs["cart"])
	}
	// First-party channel pays the client→origin RTT (APAC ≈ 260ms).
	if lat < 100_000_000 {
		t.Fatalf("APAC block fetch latency %v suspiciously low", lat)
	}
	if svc.Stats().BlockFetches != 1 {
		t.Fatal("block fetch not counted")
	}
}

func TestWarmFillsAllEdges(t *testing.T) {
	svc, _ := newTestStorefront(t)
	warmed, skipped, err := svc.Warm([]string{"/", "/product/p00001", "/ghost", "/category/shoes"})
	if err != nil {
		t.Fatal(err)
	}
	if warmed != 3 || len(skipped) != 1 || skipped[0] != "/ghost" {
		t.Fatalf("warmed=%d skipped=%v", warmed, skipped)
	}
	// Every region serves warmed paths from the edge now.
	for _, region := range netsim.Regions() {
		dev := svc.NewDevice(nil, region)
		res, err := dev.Load(context.Background(), "/product/p00001")
		if err != nil {
			t.Fatal(err)
		}
		if res.Source != proxy.SourceCDN {
			t.Fatalf("%s: warmed path served from %v", region, res.Source)
		}
	}
	// Warmed copies are sketch-visible: a write must enter the sketch.
	_ = svc.Docs().Patch("products", "p00001", map[string]any{"stock": int64(0)})
	if !svc.SketchServer().Contains("/product/p00001") {
		t.Fatal("warm fill not reported to sketch server")
	}
}

func TestWarmRenderErrorAborts(t *testing.T) {
	svc, _ := newTestStorefront(t)
	// Routed but unrenderable: product route with missing document.
	if _, _, err := svc.Warm([]string{"/product/doesnotexist"}); err == nil {
		t.Fatal("render failure swallowed")
	}
}

func TestHotPathsLeaderboard(t *testing.T) {
	svc, _ := newTestStorefront(t)
	dev := svc.NewDevice(nil, netsim.EU)
	for i := 0; i < 5; i++ {
		_, _ = dev.Load(context.Background(), "/product/p00001")
	}
	_, _ = dev.Load(context.Background(), "/product/p00002")
	// Device-cache hits never reach the service; force edge traffic with
	// a second device.
	dev2 := svc.NewDevice(nil, netsim.US)
	for i := 0; i < 3; i++ {
		_, _ = dev2.Load(context.Background(), "/product/p00001")
	}

	hot := svc.HotPaths(2)
	if len(hot) != 2 {
		t.Fatalf("hot paths = %v", hot)
	}
	if hot[0].Path != "/product/p00001" || hot[0].Hits < hot[1].Hits {
		t.Fatalf("leaderboard = %v", hot)
	}
	if all := svc.HotPaths(0); len(all) < 2 {
		t.Fatalf("unlimited leaderboard = %v", all)
	}
}

func TestAnalyticsSeriesRecorded(t *testing.T) {
	svc, _ := newTestStorefront(t)
	dev := svc.NewDevice(nil, netsim.EU)
	dev2 := svc.NewDevice(nil, netsim.EU)
	_, _ = dev.Load(context.Background(), "/product/p00001")  // origin render
	_, _ = dev2.Load(context.Background(), "/product/p00001") // edge hit
	_ = svc.Docs().Patch("products", "p00001", map[string]any{"stock": int64(2)})

	ts := svc.Analytics()
	if ts.Len("origin_renders") == 0 {
		t.Fatal("origin_renders series empty")
	}
	if ts.Len("edge_hits") == 0 {
		t.Fatal("edge_hits series empty")
	}
	if ts.Len("invalidations") == 0 {
		t.Fatal("invalidations series empty")
	}
}

func TestServiceAccessors(t *testing.T) {
	svc, clk := newTestStorefront(t)
	if svc.Engine() == nil || svc.Network() == nil || svc.Clock() != clk {
		t.Fatal("accessors broken")
	}
	if svc.Engine().Registered() == 0 {
		t.Fatal("no query pages registered with the engine")
	}
}

func TestLegacyKeyShapes(t *testing.T) {
	u := testUser()
	k1 := legacyKey(u, "/p")
	u.AddToCart("x", 1)
	k2 := legacyKey(u, "/p")
	if k1 == k2 {
		t.Fatal("cart change did not change the legacy cache key")
	}
	anon := legacyKey(nil, "/p")
	loggedOut := legacyKey(&session.User{ID: "u9"}, "/p")
	if anon != loggedOut {
		t.Fatal("anonymous and logged-out keys differ")
	}
	if !strings.Contains(anon, "anon") {
		t.Fatalf("anon key = %s", anon)
	}
	_ = proxy.SourceCDN // keep import for the transport-typed API surface
}
