package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"speedkit/internal/faults"
	"speedkit/internal/gdpr"
	"speedkit/internal/session"
)

// crashConfig is the crash-smoke profile: a Speed Kit deployment with the
// durability subsystem enabled and seed-driven process kills on the WAL
// append/fsync and snapshot-write paths.
func crashConfig(seed int64, dir string) FieldConfig {
	return FieldConfig{
		Mode:          ModeSpeedKit,
		Seed:          seed,
		Ops:           5000,
		Users:         30,
		Products:      100,
		Delta:         30 * time.Second,
		FaultRules:    faults.CrashRules(0.004),
		DataDir:       dir,
		SnapshotEvery: 64,
	}
}

// TestCrashRecoveryPreservesDelta is the heart of the crash gate: injected
// kills tear the WAL mid-write, every kill is recovered in place (the
// in-process restart), and no connected load ever exceeds Δ — the
// conservative cold start after each unclean recovery is what makes that
// hold with lost coherence history.
func TestCrashRecoveryPreservesDelta(t *testing.T) {
	for _, seed := range []int64{3, 11} {
		cfg := crashConfig(seed, t.TempDir())
		res, err := RunField(cfg)
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		if res.Crashes == 0 {
			t.Fatalf("seed=%d: no crashes injected — vacuous recovery gate", seed)
		}
		if res.Loads == 0 {
			t.Fatalf("seed=%d: nothing served", seed)
		}
		if res.MaxStaleness > cfg.Delta {
			t.Fatalf("seed=%d: connected staleness %v exceeds Δ=%v after %d crashes",
				seed, res.MaxStaleness, cfg.Delta, res.Crashes)
		}
		// Startup on an empty dir is Fresh; every in-run recovery replays
		// or cold-starts and none may report a clean history.
		if res.Recovery.Mode != 0 || res.RecoveryModes["fresh"] != 1 {
			t.Fatalf("seed=%d: startup recovery = %+v, modes %v", seed, res.Recovery, res.RecoveryModes)
		}
		var inRun uint64
		for mode, n := range res.RecoveryModes {
			if mode != "fresh" {
				inRun += n
			}
		}
		if inRun != res.Crashes {
			t.Fatalf("seed=%d: %d crashes but %d in-run recoveries (%v)",
				seed, res.Crashes, inRun, res.RecoveryModes)
		}
		if res.DurableStats.Recoveries != res.Crashes+1 {
			t.Fatalf("seed=%d: store counted %d recoveries, want %d",
				seed, res.DurableStats.Recoveries, res.Crashes+1)
		}
	}
}

// TestCrashTwinRunsConverge pins the determinism half of the gate: two
// runs with the same seed over separate data directories inject the same
// kill schedule and recover to identical coherence state — byte-identical
// sketch exports and equal generations.
func TestCrashTwinRunsConverge(t *testing.T) {
	r1, err := RunField(crashConfig(7, t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunField(crashConfig(7, t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Crashes == 0 {
		t.Fatal("no crashes injected — vacuous determinism")
	}
	if h1, h2 := r1.Faults.ScheduleHash(), r2.Faults.ScheduleHash(); h1 != h2 {
		t.Fatalf("fault schedules diverged: %x vs %x", h1, h2)
	}
	if r1.Crashes != r2.Crashes || r1.Loads != r2.Loads {
		t.Fatalf("run outcomes diverged: crashes %d/%d loads %d/%d",
			r1.Crashes, r2.Crashes, r1.Loads, r2.Loads)
	}
	g1 := r1.Service.SketchServer().Generation()
	g2 := r2.Service.SketchServer().Generation()
	if g1 != g2 {
		t.Fatalf("twin runs recovered to generations %d vs %d", g1, g2)
	}
	s1 := r1.Service.SketchServer().ExportState()
	s2 := r2.Service.SketchServer().ExportState()
	if !bytes.Equal(s1, s2) {
		t.Fatal("twin runs recovered to different sketch states")
	}
}

// TestCrashRestartAcrossRuns exercises the cross-process path: a cleanly
// shut-down run leaves a directory a second run restarts from warm — no
// saturation, Δ still held.
func TestCrashRestartAcrossRuns(t *testing.T) {
	dir := t.TempDir()
	cfg := crashConfig(5, dir)
	cfg.FaultRules = nil // run 1: durable but fault-free, clean shutdown
	r1, err := RunField(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Crashes != 0 || r1.DurableStats.WAL.Appends == 0 {
		t.Fatalf("run 1: crashes=%d appends=%d", r1.Crashes, r1.DurableStats.WAL.Appends)
	}
	r2, err := RunField(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Recovery.Mode.String() == "fresh" {
		t.Fatal("run 2 found no persisted state")
	}
	if r2.Recovery.Saturated {
		t.Fatal("clean shutdown recovered cold — clean marker lost")
	}
	if r2.MaxStaleness > cfg.Delta {
		t.Fatalf("run 2 staleness %v exceeds Δ=%v", r2.MaxStaleness, cfg.Delta)
	}
}

// TestNoPIIPersisted is the GDPR half of the gate: after a crash-laden
// run with logged-in, consenting users, nothing identity-bearing may sit
// in the WAL segments or snapshots — no PII field name and no concrete
// user identity (ID, name, email) from the simulated population.
func TestNoPIIPersisted(t *testing.T) {
	dir := t.TempDir()
	cfg := crashConfig(3, dir)
	res, err := RunField(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes == 0 {
		t.Fatal("no crashes injected — scan would miss torn-write paths")
	}

	var segs, snaps int
	var persisted []byte
	err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		switch {
		case strings.HasSuffix(path, ".seg"):
			segs++
		case strings.HasSuffix(path, ".snap"):
			snaps++
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		persisted = append(persisted, b...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if segs == 0 || snaps == 0 {
		t.Fatalf("scan is not covering both artifact kinds: %d segments, %d snapshots", segs, snaps)
	}

	for _, field := range gdpr.PIIFields() {
		// Two-letter names ("ip") collide with random binary bytes far too
		// often to scan for; every other canonical PII field name is long
		// enough that a hit means real leakage, not chance.
		if len(field) < 4 {
			continue
		}
		if bytes.Contains(persisted, []byte(field)) {
			t.Errorf("PII field name %q found in persisted bytes", field)
		}
	}
	for _, u := range session.Population(cfg.Seed, cfg.Users) {
		for _, val := range []string{u.ID, u.Name, u.Email} {
			if val != "" && bytes.Contains(persisted, []byte(val)) {
				t.Errorf("user identity %q found in persisted bytes", val)
			}
		}
	}
}
