// Package invalidb implements the real-time query invalidation engine —
// the server-side component that turns raw database change events into
// "this cached page is now stale" signals. It reproduces the semantics of
// the production system's stream-processing matcher: registered
// continuous queries are partitioned across shards; every change event is
// matched against all queries of its collection; a query is invalidated
// when the change can alter its result set (the document entered it, left
// it, or changed while inside it).
package invalidb

import (
	"sort"
	"sync"
	"time"

	"speedkit/internal/clock"
	"speedkit/internal/query"
	"speedkit/internal/storage"
)

// MatchKind classifies how a change affects a query result.
type MatchKind int

// Match kinds.
const (
	// Entered: the document now matches a query it didn't match before.
	Entered MatchKind = iota
	// Left: the document no longer matches.
	Left
	// Changed: the document matched before and after, but its content
	// changed (ordering or displayed fields may differ).
	Changed
)

// String names the match kind.
func (k MatchKind) String() string {
	switch k {
	case Entered:
		return "entered"
	case Left:
		return "left"
	case Changed:
		return "changed"
	}
	return "unknown"
}

// Invalidation is one staleness signal.
type Invalidation struct {
	// RegistrationID identifies the affected cached resource (typically
	// the listing page path or the query ID).
	RegistrationID string
	// Kind says how the result set was affected.
	Kind MatchKind
	// Change is the underlying database event.
	Change storage.ChangeEvent
	// DetectedAt is when the engine classified the event.
	DetectedAt time.Time
}

// Config parameterizes the engine.
type Config struct {
	// Shards partitions registered queries for parallel matching
	// (default 4). Matching within a shard is sequential; shards run
	// concurrently per event.
	Shards int
	// Clock supplies detection timestamps (default system clock).
	Clock clock.Clock
}

func (c *Config) applyDefaults() {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Clock == nil {
		c.Clock = clock.System
	}
}

// Stats counts engine activity.
type Stats struct {
	EventsProcessed uint64
	Matches         uint64
	Registered      int
}

// Engine matches change events against registered queries. Safe for
// concurrent use.
type Engine struct {
	cfg    Config
	shards []*shard

	mu          sync.Mutex
	subscribers map[int]func(Invalidation)
	nextSub     int
	events      uint64
	matches     uint64
}

type shard struct {
	mu   sync.RWMutex
	regs map[string]query.Query // guarded by mu
}

// New creates an engine.
func New(cfg Config) *Engine {
	cfg.applyDefaults()
	e := &Engine{
		cfg:         cfg,
		shards:      make([]*shard, cfg.Shards),
		subscribers: make(map[int]func(Invalidation)),
	}
	for i := range e.shards {
		e.shards[i] = &shard{regs: make(map[string]query.Query)}
	}
	return e
}

// shardFor assigns a registration to a shard by FNV-1a hash.
func (e *Engine) shardFor(id string) *shard {
	var h uint32 = 2166136261
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return e.shards[h%uint32(len(e.shards))]
}

// Register adds (or replaces) a continuous query under id.
func (e *Engine) Register(id string, q query.Query) {
	s := e.shardFor(id)
	s.mu.Lock()
	s.regs[id] = q
	s.mu.Unlock()
}

// Unregister removes the query under id, reporting whether it existed.
func (e *Engine) Unregister(id string) bool {
	s := e.shardFor(id)
	s.mu.Lock()
	_, ok := s.regs[id]
	delete(s.regs, id)
	s.mu.Unlock()
	return ok
}

// Registered returns the number of registered queries.
func (e *Engine) Registered() int {
	n := 0
	for _, s := range e.shards {
		s.mu.RLock()
		n += len(s.regs)
		s.mu.RUnlock()
	}
	return n
}

// Shards returns the matcher's shard count — a deployment-shape fact
// health endpoints report so operators can see how the engine was sized.
func (e *Engine) Shards() int { return len(e.shards) }

// OnInvalidation subscribes fn to invalidation signals. Signals for one
// event are delivered sorted by registration ID, synchronously from
// Process. The returned cancel function unsubscribes.
func (e *Engine) OnInvalidation(fn func(Invalidation)) (cancel func()) {
	e.mu.Lock()
	id := e.nextSub
	e.nextSub++
	e.subscribers[id] = fn
	e.mu.Unlock()
	return func() {
		e.mu.Lock()
		delete(e.subscribers, id)
		e.mu.Unlock()
	}
}

// classify decides whether a change affects a query and how. An absent
// before/after image means the document did not exist on that side, so a
// nil image never matches (distinct from an empty document).
func classify(q query.Query, ev storage.ChangeEvent) (MatchKind, bool) {
	if q.Collection != ev.Collection {
		return 0, false
	}
	before := ev.Before != nil && q.Match(ev.Before)
	after := ev.After != nil && q.Match(ev.After)
	switch {
	case before && after:
		return Changed, true
	case before:
		return Left, true
	case after:
		return Entered, true
	default:
		return 0, false
	}
}

// Process matches one change event against every registered query and
// delivers invalidation signals to subscribers. Returns the signals for
// callers that prefer pull-style use.
func (e *Engine) Process(ev storage.ChangeEvent) []Invalidation {
	now := e.cfg.Clock.Now()

	// Fan the event out across shards concurrently, collect hits.
	type hit struct {
		id   string
		kind MatchKind
	}
	hitCh := make(chan []hit, len(e.shards))
	var wg sync.WaitGroup
	for _, s := range e.shards {
		wg.Add(1)
		go func(s *shard) {
			defer wg.Done()
			var hits []hit
			s.mu.RLock()
			for id, q := range s.regs {
				if kind, ok := classify(q, ev); ok {
					hits = append(hits, hit{id: id, kind: kind})
				}
			}
			s.mu.RUnlock()
			hitCh <- hits
		}(s)
	}
	wg.Wait()
	close(hitCh)

	var all []hit
	for hs := range hitCh {
		all = append(all, hs...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].id < all[j].id })

	out := make([]Invalidation, len(all))
	for i, h := range all {
		out[i] = Invalidation{
			RegistrationID: h.id,
			Kind:           h.kind,
			Change:         ev,
			DetectedAt:     now,
		}
	}

	e.mu.Lock()
	e.events++
	e.matches += uint64(len(out))
	subs := make([]func(Invalidation), 0, len(e.subscribers))
	ids := make([]int, 0, len(e.subscribers))
	for id := range e.subscribers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		subs = append(subs, e.subscribers[id])
	}
	e.mu.Unlock()

	for _, inv := range out {
		for _, fn := range subs {
			fn(inv)
		}
	}
	return out
}

// AttachTo subscribes the engine to a document store's change stream so
// every committed mutation is matched automatically. Returns a cancel
// function detaching it.
func (e *Engine) AttachTo(docs *storage.DocumentStore) (cancel func()) {
	return docs.Watch(func(ev storage.ChangeEvent) {
		e.Process(ev)
	})
}

// Stats returns a copy of the counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Stats{
		EventsProcessed: e.events,
		Matches:         e.matches,
		Registered:      e.Registered(),
	}
}
