// Package sloguse seeds obslabels violations on the structured-log
// surface. The fixture test loads it under the synthetic import path
// "fixture/sloguse" — device-side code, where importing slog and
// session together is legal but putting identity on a log record is not.
package sloguse

import (
	"context"
	"errors"

	"speedkit/internal/session"
	"speedkit/internal/slog"
)

const tierKey = "tier" // PII-classified: loyalty tier reveals account state

// Record shows every shape the analyzer must catch — and the clean
// forms it must leave alone.
func Record(ctx context.Context, lg *slog.Logger, u *session.User, source string) {
	// Clean: bounded, anonymous protocol state.
	lg.Info(ctx).Str("source", source).Int("generation", 3).Msg("served")
	lg.Warn(ctx).Err(errors.New("upstream timeout")).Msg("degraded")

	// PII-classified constant keys, literal and via a named constant —
	// on string fields and non-string fields alike.
	lg.Info(ctx).Str("email", "x").Msg("bad") // want "PII-classified field name"
	lg.Info(ctx).Str(tierKey, "x").Msg("bad") // want "PII-classified field name"
	lg.Info(ctx).Int("user_id", 1).Msg("bad") // want "PII-classified field name"

	// Identity-derived values behind a clean key, and in the message.
	lg.Info(ctx).Str("segment", u.ID).Msg("bad") // want "identity-bearing type"
	lg.Error(ctx).Msg(u.Name)                    // want "identity-bearing type"

	// Component names are static identifiers, never request state.
	lg.Named(ident(u)).Info(ctx).Msg("bad") // want "identity-bearing value"
}

func ident(u *session.User) string { return u.ID }
