package workload

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestTraceRoundTrip(t *testing.T) {
	gen := NewGenerator(Config{Seed: 5, Users: 10})
	ops := gen.Take(500)
	// Gaps round-trip at microsecond resolution; truncate first so
	// equality below is exact.
	for i := range ops {
		ops[i].Gap = ops[i].Gap.Truncate(time.Microsecond)
	}

	var buf bytes.Buffer
	if err := WriteTrace(&buf, ops); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("len = %d, want %d", len(got), len(ops))
	}
	for i := range ops {
		if got[i] != ops[i] {
			t.Fatalf("op %d: %+v != %+v", i, got[i], ops[i])
		}
	}
}

func TestTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty trace: %v, %v", got, err)
	}
}

func TestTraceIsJSONLines(t *testing.T) {
	var buf bytes.Buffer
	_ = WriteTrace(&buf, []Op{{Kind: ViewProduct, UserIdx: 3, Path: "/product/p1", ProductID: "p1", Gap: time.Second}})
	line := strings.TrimSpace(buf.String())
	if strings.Count(line, "\n") != 0 {
		t.Fatalf("one op spans multiple lines: %q", line)
	}
	for _, want := range []string{`"kind":"view-product"`, `"user":3`, `"gap_us":1000000`} {
		if !strings.Contains(line, want) {
			t.Errorf("line missing %s: %s", want, line)
		}
	}
}

func TestTraceRejectsGarbage(t *testing.T) {
	cases := []string{
		`{"kind":"no-such-op","gap_us":1}`,
		`{"kind":"view-home","gap_us":-5}`,
		`not json at all`,
	}
	for _, c := range cases {
		if _, err := ReadTrace(strings.NewReader(c)); err == nil {
			t.Errorf("garbage accepted: %s", c)
		}
	}
}

func TestTraceRejectsUnknownKindOnWrite(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, []Op{{Kind: OpKind(99)}}); err == nil {
		t.Fatal("unknown kind written")
	}
}
