// Package storage implements the polyglot persistence layer of the Speed
// Kit reproduction. The production system combines several specialized
// stores — a key-value store for counters and sketch state, a document
// database as the system of record, and a time-series store for the
// analytics that drive TTL estimation. Each store here reproduces the API
// surface and semantics the coherence protocol depends on (TTL keys,
// change streams, range queries) as an embedded, deterministic Go
// implementation driven by an injectable clock.
package storage

import (
	"sort"
	"sync"
	"time"

	"speedkit/internal/clock"
)

// KV is a Redis-style key-value store with per-key expiry and atomic
// counters. Expired keys are reaped lazily on access and eagerly by Sweep,
// mirroring Redis' hybrid strategy. Safe for concurrent use.
type KV struct {
	mu    sync.RWMutex
	data  map[string]kvEntry
	clk   clock.Clock
	stats KVStats
}

type kvEntry struct {
	value     []byte
	counter   int64
	isCounter bool
	expiresAt time.Time // zero means no expiry
}

// KVStats counts store operations for the polyglot cost accounting.
type KVStats struct {
	Gets, Hits, Sets, Dels, Expirations uint64
}

// NewKV creates a store using clk for expiry decisions. A nil clock uses
// the system clock.
func NewKV(clk clock.Clock) *KV {
	if clk == nil {
		clk = clock.System
	}
	return &KV{data: make(map[string]kvEntry), clk: clk}
}

func (kv *KV) expired(e kvEntry, now time.Time) bool {
	return !e.expiresAt.IsZero() && !now.Before(e.expiresAt)
}

// Set stores value under key with the given TTL; ttl <= 0 means no expiry.
// A copy of value is stored, so callers may reuse their buffer.
func (kv *KV) Set(key string, value []byte, ttl time.Duration) {
	e := kvEntry{value: append([]byte(nil), value...)}
	if ttl > 0 {
		e.expiresAt = kv.clk.Now().Add(ttl)
	}
	kv.mu.Lock()
	kv.data[key] = e
	kv.stats.Sets++
	kv.mu.Unlock()
}

// Get returns the value stored under key and whether it was present and
// unexpired. The returned slice is a copy.
func (kv *KV) Get(key string) ([]byte, bool) {
	now := kv.clk.Now()
	kv.mu.Lock()
	defer kv.mu.Unlock()
	kv.stats.Gets++
	e, ok := kv.data[key]
	if !ok {
		return nil, false
	}
	if kv.expired(e, now) {
		delete(kv.data, key)
		kv.stats.Expirations++
		return nil, false
	}
	if e.isCounter {
		return nil, false
	}
	kv.stats.Hits++
	return append([]byte(nil), e.value...), true
}

// Del removes key, reporting whether it was present (expired keys count as
// absent).
func (kv *KV) Del(key string) bool {
	now := kv.clk.Now()
	kv.mu.Lock()
	defer kv.mu.Unlock()
	e, ok := kv.data[key]
	if !ok {
		return false
	}
	delete(kv.data, key)
	kv.stats.Dels++
	if kv.expired(e, now) {
		kv.stats.Expirations++
		return false
	}
	return true
}

// TTL returns the remaining lifetime of key: (d, true) with d > 0 for a
// key that expires, (0, true) for a key with no expiry, and (0, false) for
// an absent or expired key.
func (kv *KV) TTL(key string) (time.Duration, bool) {
	now := kv.clk.Now()
	kv.mu.Lock()
	defer kv.mu.Unlock()
	e, ok := kv.data[key]
	if !ok {
		return 0, false
	}
	if kv.expired(e, now) {
		delete(kv.data, key)
		kv.stats.Expirations++
		return 0, false
	}
	if e.expiresAt.IsZero() {
		return 0, true
	}
	return e.expiresAt.Sub(now), true
}

// Expire updates the TTL of an existing key, reporting whether it existed.
func (kv *KV) Expire(key string, ttl time.Duration) bool {
	now := kv.clk.Now()
	kv.mu.Lock()
	defer kv.mu.Unlock()
	e, ok := kv.data[key]
	if !ok || kv.expired(e, now) {
		return false
	}
	if ttl > 0 {
		e.expiresAt = now.Add(ttl)
	} else {
		e.expiresAt = time.Time{}
	}
	kv.data[key] = e
	return true
}

// Incr atomically adds delta to the counter stored at key (creating it at
// zero) and returns the new value. Counters never expire unless Expire is
// called on them. Calling Incr on a key holding a plain value converts it
// to a counter starting from zero, matching the "last writer wins the
// type" semantics the sketch bookkeeping relies on.
func (kv *KV) Incr(key string, delta int64) int64 {
	now := kv.clk.Now()
	kv.mu.Lock()
	defer kv.mu.Unlock()
	e, ok := kv.data[key]
	if !ok || kv.expired(e, now) || !e.isCounter {
		e = kvEntry{isCounter: true}
	}
	e.counter += delta
	kv.data[key] = e
	kv.stats.Sets++
	return e.counter
}

// Counter returns the current counter value at key (0 if absent).
func (kv *KV) Counter(key string) int64 {
	now := kv.clk.Now()
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	e, ok := kv.data[key]
	if !ok || kv.expired(e, now) || !e.isCounter {
		return 0
	}
	return e.counter
}

// Keys returns all live keys with the given prefix, sorted.
func (kv *KV) Keys(prefix string) []string {
	now := kv.clk.Now()
	kv.mu.RLock()
	out := make([]string, 0, 16)
	for k, e := range kv.data {
		if kv.expired(e, now) {
			continue
		}
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			out = append(out, k)
		}
	}
	kv.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Sweep eagerly removes expired entries and returns how many were reaped.
func (kv *KV) Sweep() int {
	now := kv.clk.Now()
	kv.mu.Lock()
	defer kv.mu.Unlock()
	n := 0
	for k, e := range kv.data {
		if kv.expired(e, now) {
			delete(kv.data, k)
			n++
		}
	}
	kv.stats.Expirations += uint64(n)
	return n
}

// Len returns the number of entries currently held, including entries that
// have expired but not yet been reaped.
func (kv *KV) Len() int {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	return len(kv.data)
}

// Stats returns a copy of the operation counters.
func (kv *KV) Stats() KVStats {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	return kv.stats
}
