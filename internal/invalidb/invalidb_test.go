package invalidb

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"speedkit/internal/clock"
	"speedkit/internal/query"
	"speedkit/internal/storage"
)

func shoesQuery() query.Query {
	return query.MustParse(`products WHERE category = "shoes" AND price < 100`)
}

func insertEvent(id string, doc map[string]any) storage.ChangeEvent {
	return storage.ChangeEvent{Collection: "products", ID: id, Kind: storage.ChangeInsert, After: doc}
}

func updateEvent(id string, before, after map[string]any) storage.ChangeEvent {
	return storage.ChangeEvent{Collection: "products", ID: id, Kind: storage.ChangeUpdate, Before: before, After: after}
}

func deleteEvent(id string, before map[string]any) storage.ChangeEvent {
	return storage.ChangeEvent{Collection: "products", ID: id, Kind: storage.ChangeDelete, Before: before}
}

func TestClassifyKinds(t *testing.T) {
	e := New(Config{})
	e.Register("/category/shoes", shoesQuery())

	cheapShoe := map[string]any{"category": "shoes", "price": 50.0}
	dearShoe := map[string]any{"category": "shoes", "price": 200.0}
	hat := map[string]any{"category": "hats", "price": 10.0}

	cases := []struct {
		name string
		ev   storage.ChangeEvent
		want MatchKind
		hits int
	}{
		{"insert matching", insertEvent("p1", cheapShoe), Entered, 1},
		{"insert non-matching", insertEvent("p2", hat), 0, 0},
		{"update into result", updateEvent("p3", dearShoe, cheapShoe), Entered, 1},
		{"update out of result", updateEvent("p4", cheapShoe, dearShoe), Left, 1},
		{"update within result", updateEvent("p5", cheapShoe, map[string]any{"category": "shoes", "price": 60.0}), Changed, 1},
		{"update outside result", updateEvent("p6", hat, hat), 0, 0},
		{"delete matching", deleteEvent("p7", cheapShoe), Left, 1},
		{"delete non-matching", deleteEvent("p8", hat), 0, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			invs := e.Process(c.ev)
			if len(invs) != c.hits {
				t.Fatalf("hits = %d, want %d", len(invs), c.hits)
			}
			if c.hits == 1 && invs[0].Kind != c.want {
				t.Fatalf("kind = %v, want %v", invs[0].Kind, c.want)
			}
		})
	}
}

func TestCollectionIsolation(t *testing.T) {
	e := New(Config{})
	e.Register("/category/shoes", shoesQuery())
	ev := storage.ChangeEvent{Collection: "users", ID: "u1", Kind: storage.ChangeInsert,
		After: map[string]any{"category": "shoes", "price": 1.0}}
	if invs := e.Process(ev); len(invs) != 0 {
		t.Fatalf("cross-collection match: %v", invs)
	}
}

func TestMultipleRegistrationsSortedDelivery(t *testing.T) {
	e := New(Config{})
	e.Register("/b", query.New("products", nil))
	e.Register("/a", query.New("products", nil))
	e.Register("/c", query.MustParse(`products WHERE price > 1000`))
	invs := e.Process(insertEvent("p1", map[string]any{"price": 5.0}))
	if len(invs) != 2 {
		t.Fatalf("hits = %d", len(invs))
	}
	if invs[0].RegistrationID != "/a" || invs[1].RegistrationID != "/b" {
		t.Fatalf("order = %v, %v", invs[0].RegistrationID, invs[1].RegistrationID)
	}
}

func TestUnregister(t *testing.T) {
	e := New(Config{})
	e.Register("/x", query.New("products", nil))
	if !e.Unregister("/x") {
		t.Fatal("unregister existing failed")
	}
	if e.Unregister("/x") {
		t.Fatal("double unregister succeeded")
	}
	if invs := e.Process(insertEvent("p1", map[string]any{})); len(invs) != 0 {
		t.Fatal("unregistered query still matching")
	}
}

func TestRegisterReplaces(t *testing.T) {
	e := New(Config{})
	e.Register("/x", query.MustParse(`products WHERE price > 1000`))
	e.Register("/x", query.New("products", nil)) // replace with match-all
	invs := e.Process(insertEvent("p1", map[string]any{"price": 1.0}))
	if len(invs) != 1 {
		t.Fatalf("replaced registration not effective: %d hits", len(invs))
	}
	if e.Registered() != 1 {
		t.Fatalf("registered = %d", e.Registered())
	}
}

func TestSubscribersReceiveSignals(t *testing.T) {
	clk := clock.NewSimulated(time.Time{})
	e := New(Config{Clock: clk})
	e.Register("/all", query.New("products", nil))
	var got []Invalidation
	cancel := e.OnInvalidation(func(inv Invalidation) { got = append(got, inv) })
	e.Process(insertEvent("p1", map[string]any{"x": 1}))
	cancel()
	e.Process(insertEvent("p2", map[string]any{"x": 1}))
	if len(got) != 1 {
		t.Fatalf("subscriber saw %d signals, want 1", len(got))
	}
	if !got[0].DetectedAt.Equal(clk.Now()) {
		t.Fatal("DetectedAt wrong")
	}
	if got[0].Change.ID != "p1" {
		t.Fatal("change not propagated")
	}
}

func TestAttachToDocumentStore(t *testing.T) {
	clk := clock.NewSimulated(time.Time{})
	docs := storage.NewDocumentStore(clk)
	e := New(Config{Clock: clk})
	e.Register("/cheap", query.MustParse(`products WHERE price < 100`))

	var signals []Invalidation
	e.OnInvalidation(func(inv Invalidation) { signals = append(signals, inv) })
	cancel := e.AttachTo(docs)
	defer cancel()

	_ = docs.Insert("products", "p1", map[string]any{"price": 50.0})
	_ = docs.Patch("products", "p1", map[string]any{"price": 60.0})
	_ = docs.Patch("products", "p1", map[string]any{"price": 500.0})
	_ = docs.Delete("products", "p1")

	if len(signals) != 3 {
		t.Fatalf("signals = %d, want 3 (enter, change, leave)", len(signals))
	}
	if signals[0].Kind != Entered || signals[1].Kind != Changed || signals[2].Kind != Left {
		t.Fatalf("kinds = %v %v %v", signals[0].Kind, signals[1].Kind, signals[2].Kind)
	}
}

func TestShardingCoversAllRegistrations(t *testing.T) {
	e := New(Config{Shards: 8})
	const n = 200
	for i := 0; i < n; i++ {
		e.Register(fmt.Sprintf("/q/%d", i), query.New("products", nil))
	}
	if e.Registered() != n {
		t.Fatalf("registered = %d", e.Registered())
	}
	invs := e.Process(insertEvent("p1", map[string]any{"x": 1}))
	if len(invs) != n {
		t.Fatalf("hits = %d, want %d (every shard must match)", len(invs), n)
	}
}

func TestStats(t *testing.T) {
	e := New(Config{})
	e.Register("/all", query.New("products", nil))
	e.Process(insertEvent("p1", map[string]any{}))
	e.Process(insertEvent("p2", map[string]any{}))
	st := e.Stats()
	if st.EventsProcessed != 2 || st.Matches != 2 || st.Registered != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMatchKindString(t *testing.T) {
	if Entered.String() != "entered" || Left.String() != "left" ||
		Changed.String() != "changed" || MatchKind(9).String() != "unknown" {
		t.Fatal("names wrong")
	}
}

func TestConcurrentProcessAndRegister(t *testing.T) {
	e := New(Config{Shards: 4})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				e.Register(fmt.Sprintf("/q/%d/%d", w, i), query.MustParse(`products WHERE price < 100`))
				e.Process(insertEvent(fmt.Sprintf("p%d", i), map[string]any{"price": float64(i)}))
			}
		}(w)
	}
	wg.Wait()
	if e.Registered() != 800 {
		t.Fatalf("registered = %d", e.Registered())
	}
	if e.Stats().EventsProcessed != 800 {
		t.Fatalf("events = %d", e.Stats().EventsProcessed)
	}
}

func BenchmarkProcess1kQueries(b *testing.B) {
	e := New(Config{Shards: 8})
	for i := 0; i < 1000; i++ {
		e.Register(fmt.Sprintf("/q/%d", i),
			query.MustParse(fmt.Sprintf(`products WHERE price < %d`, i%500)))
	}
	ev := insertEvent("p1", map[string]any{"price": 250.0})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Process(ev)
	}
}
