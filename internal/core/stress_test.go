package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"speedkit/internal/netsim"
	"speedkit/internal/workload"
)

// TestConcurrentDevicesAndWriters hammers one service with concurrent
// device loads, catalog writers, and clock advancement. It asserts the
// stack stays consistent under -race and that observed staleness stays
// within 2×Δ (the extra Δ of slack covers clock advancement racing
// between a device's sketch check and its staleness measurement — the
// strict bound is asserted by the single-threaded property tests, where
// reads are atomic in simulated time).
func TestConcurrentDevicesAndWriters(t *testing.T) {
	svc, clk := newTestStorefront(t)
	const devicesN, opsPer = 8, 200

	var wg sync.WaitGroup
	var worstStale atomic.Int64
	errCh := make(chan error, devicesN+2)

	// Devices.
	for d := 0; d < devicesN; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(d)))
			region := netsim.Regions()[d%3]
			dev := svc.NewDevice(testUser(), region)
			for i := 0; i < opsPer; i++ {
				path := workload.ProductPath(rng.Intn(50))
				res, err := dev.Load(context.Background(), path)
				if err != nil {
					errCh <- fmt.Errorf("device %d: %w", d, err)
					return
				}
				stale := svc.VersionLog().Staleness(path, res.Version, clk.Now())
				for {
					cur := worstStale.Load()
					if int64(stale) <= cur || worstStale.CompareAndSwap(cur, int64(stale)) {
						break
					}
				}
			}
		}(d)
	}
	// Writer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < opsPer; i++ {
			id := workload.ProductID(rng.Intn(50))
			if err := svc.Docs().Patch("products", id, map[string]any{"stock": int64(i)}); err != nil {
				errCh <- err
				return
			}
		}
	}()
	// Clock.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < opsPer; i++ {
			clk.Advance(100 * time.Millisecond)
		}
	}()

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if worst := time.Duration(worstStale.Load()); worst > 2*svc.Delta() {
		t.Fatalf("worst staleness %v far beyond Δ=%v under concurrency", worst, svc.Delta())
	}
	// The pipeline stayed live.
	if svc.Stats().Invalidations == 0 {
		t.Fatal("no invalidations processed")
	}
}
