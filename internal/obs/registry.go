package obs

import (
	"fmt"
	"sync"

	"speedkit/internal/metrics"
)

// Kind is the instrument type of a metric family.
type Kind int

// Instrument kinds. Histograms are exposed in the Prometheus summary
// shape (quantiles + _sum + _count).
const (
	KindCounter Kind = iota
	KindGauge
	KindSummary
)

// String names the kind in the exposition format.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindSummary:
		return "summary"
	}
	return "untyped"
}

// overflowSignature identifies the collapse series a family routes new
// label sets into once its series cap is reached.
const overflowSignature = "\x00overflow"

// series is one labeled instrument of a family. Exactly one of the
// instrument pointers is set, matching the family kind.
type series struct {
	labels  []Label
	counter *metrics.Counter
	gauge   *metrics.Gauge
	histo   *metrics.Histogram
}

// family is every series registered under one metric name.
type family struct {
	name string
	kind Kind

	mu     sync.RWMutex
	series map[string]*series // guarded by mu
	// overflowed notes that at least one label set was collapsed into the
	// overflow series because the cap was hit.
	overflowed bool // guarded by mu
}

// Registry is the process-wide metric namespace: stable dotted names,
// each with a small bounded label set, resolving to the shared
// metrics.Counter/Gauge/Histogram instruments. Lookups create on first
// use and are safe for concurrent use; hot paths resolve their handles
// once at construction and then touch only the lock-free instruments.
type Registry struct {
	// MaxSeriesPerFamily caps the distinct label sets of one metric name.
	// Further label sets collapse into a single {overflow="true"} series,
	// so a label-value explosion degrades resolution instead of memory.
	// Set before the first lookup; the default is 64.
	MaxSeriesPerFamily int

	mu       sync.RWMutex
	families map[string]*family // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{MaxSeriesPerFamily: 64, families: make(map[string]*family)}
}

// Default is the process default registry, the obs analogue of
// net/http.DefaultServeMux: components that are not handed an explicit
// registry record here, so one scrape or dump sees the whole process.
var Default = NewRegistry()

// Counter resolves (creating on first use) the counter series for name
// and labels. It panics on an invalid name, a PII-classified label key,
// or if name is already registered with a different kind — all
// programmer errors the tests and the obslabels analyzer pin.
func (r *Registry) Counter(name string, labels ...Label) *metrics.Counter {
	return r.lookup(name, KindCounter, labels).counter
}

// Gauge resolves the gauge series for name and labels.
func (r *Registry) Gauge(name string, labels ...Label) *metrics.Gauge {
	return r.lookup(name, KindGauge, labels).gauge
}

// Histogram resolves the histogram series for name and labels.
func (r *Registry) Histogram(name string, labels ...Label) *metrics.Histogram {
	return r.lookup(name, KindSummary, labels).histo
}

func (r *Registry) lookup(name string, kind Kind, labels []Label) *series {
	fam := r.familyFor(name, kind)
	sorted := validateLabels(name, labels)
	sig := signature(sorted)

	fam.mu.RLock()
	s, ok := fam.series[sig]
	fam.mu.RUnlock()
	if ok {
		return s
	}

	fam.mu.Lock()
	defer fam.mu.Unlock()
	if s, ok := fam.series[sig]; ok {
		return s
	}
	max := r.MaxSeriesPerFamily
	if max <= 0 {
		max = 64
	}
	if len(fam.series) >= max {
		fam.overflowed = true
		if s, ok := fam.series[overflowSignature]; ok {
			return s
		}
		s := newSeries(kind, []Label{{Key: "overflow", Value: "true"}})
		fam.series[overflowSignature] = s
		return s
	}
	s = newSeries(kind, sorted)
	fam.series[sig] = s
	return s
}

func newSeries(kind Kind, labels []Label) *series {
	s := &series{labels: labels}
	switch kind {
	case KindCounter:
		s.counter = metrics.NewCounter()
	case KindGauge:
		s.gauge = metrics.NewGauge()
	case KindSummary:
		s.histo = metrics.NewHistogram()
	}
	return s
}

func (r *Registry) familyFor(name string, kind Kind) *family {
	r.mu.RLock()
	fam, ok := r.families[name]
	r.mu.RUnlock()
	if !ok {
		validateName(name)
		r.mu.Lock()
		if fam, ok = r.families[name]; !ok {
			fam = &family{name: name, kind: kind, series: make(map[string]*series)}
			r.families[name] = fam
		}
		r.mu.Unlock()
	}
	if fam.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, fam.kind, kind))
	}
	return fam
}

// Families returns the number of registered metric names.
func (r *Registry) Families() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.families)
}
