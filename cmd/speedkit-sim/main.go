// Command speedkit-sim runs one deployment simulation with explicit
// parameters and prints the full measurement report — the exploratory
// companion to speedkit-bench's fixed experiment suite.
//
// Usage:
//
//	speedkit-sim -mode speedkit -ops 50000 -writes 0.05 -delta 30s
//	speedkit-sim -mode ttl-only -ops 50000 -writes 0.05
//	speedkit-sim -mode direct -diurnal -ops 100000
//	speedkit-sim -chaos -ops 30000 -seed 7
//
// -chaos installs the deterministic fault-injection profile over every
// transport and pipeline hop, runs the deployment twice on the same
// seed, and asserts the resilience invariants: identical fault
// schedules across runs, every served page Δ-atomic, injected fault
// rates on the sketch and origin paths at or above the profile floor,
// and no leaked goroutines. Violations exit non-zero, so `make chaos`
// is a CI gate, not a demo.
//
// -crash enables the durability subsystem over a scratch directory and
// installs seed-driven process kills on the WAL append/fsync and
// snapshot-write paths; each kill tears the log mid-write and is
// recovered in place. The gate runs the deployment twice on the same
// seed over separate directories and asserts: kills actually fired,
// every connected load stayed within Δ through every crash, the twin
// runs recovered to identical sketch generations and byte-identical
// exported state, and nothing identity-bearing (PII field names,
// simulated user IDs/names/emails) sits in any persisted byte.
// Violations exit non-zero, so `make crash` is a CI gate too.
//
// -stitch runs the two-process tracing gate: a device proxy and a
// server with independent seeded tracers, joined only by real HTTP over
// a loopback listener. One page load and one write must each produce a
// single stitched trace — device and server spans sharing a trace ID
// propagated via the W3C traceparent header, with correct causal
// parentage through to the invalidation pipeline — and twin runs on the
// same seed must export byte-identical trace JSON. `make stitch`.
//
// -edge runs the edge smoke gate: a real speedkit-server and a speedkit
// edge proxy joined only by loopback HTTP. A 100-client stampede on one
// cold path must reach the origin exactly once; a backend write must
// flow through the invalidation pipeline to an edge purge; a seed-pinned
// kill torn into the disk tier's WAL append mid-fill must be recovered
// warm by an in-process restart serving byte-identical bodies without
// refetching; and no PII byte may appear in anything the edge
// persisted. `make edge`.
//
// -cluster runs the multi-node smoke gate: a 3-node coordinator-free
// deployment — per-node shard sketches over per-node WAL directories,
// delta exchange pulled over real loopback HTTP — driven on one shared
// simulated clock with seeded node kills and exchange partitions.
// Sharded invalidation matching must equal a single unsharded engine;
// every cache serve must stay within Δ of its first acknowledged write
// through every kill and partition; twin seeded runs must export
// byte-identical merged sketches; no raw identity may reach a node's
// persisted bytes; no goroutine may leak. `make cluster`.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"speedkit/internal/bench"
	"speedkit/internal/clock"
	"speedkit/internal/faults"
	"speedkit/internal/gdpr"
	"speedkit/internal/netsim"
	"speedkit/internal/proxy"
	"speedkit/internal/session"
	"speedkit/internal/workload"
)

func parseMode(s string) (bench.ClientMode, error) {
	switch s {
	case "speedkit":
		return bench.ModeSpeedKit, nil
	case "direct":
		return bench.ModeDirect, nil
	case "legacy", "legacy-cdn":
		return bench.ModeLegacy, nil
	case "ttl-only", "ttlonly":
		return bench.ModeTTLOnly, nil
	}
	return 0, fmt.Errorf("unknown mode %q (speedkit|direct|legacy|ttl-only)", s)
}

func main() {
	mode := flag.String("mode", "speedkit", "client mode: speedkit|direct|legacy|ttl-only")
	ops := flag.Int("ops", 20000, "workload operations")
	users := flag.Int("users", 90, "device population")
	products := flag.Int("products", 500, "catalog size")
	writes := flag.Float64("writes", 0.02, "backend write fraction")
	delta := flag.Duration("delta", 60*time.Second, "staleness bound Δ")
	seed := flag.Int64("seed", 1, "deterministic seed")
	rate := flag.Float64("rate", 50, "mean workload ops per simulated second")
	diurnal := flag.Bool("diurnal", false, "day/night load curve")
	bounce := flag.Bool("bounce", false, "bounce model (slow loads abort sessions)")
	record := flag.String("record", "", "write the generated workload trace to this file (JSON Lines)")
	replay := flag.String("replay", "", "replay a recorded workload trace instead of generating one")
	obsDump := flag.Bool("obs", true, "dump the metrics registry after the report")
	chaos := flag.Bool("chaos", false, "chaos mode: inject faults, run twice, assert resilience invariants")
	chaosRate := flag.Float64("chaosrate", 0.15, "chaos profile base fault rate")
	crash := flag.Bool("crash", false, "crash mode: inject durability kills, recover, assert Δ + determinism + no persisted PII")
	crashRate := flag.Float64("crashrate", 0.004, "crash profile per-WAL-append kill probability")
	stitch := flag.Bool("stitch", false, "stitch mode: device↔server over real HTTP, assert cross-process trace stitching + byte-determinism")
	edgeGate := flag.Bool("edge", false, "edge mode: server+edge over real HTTP, assert coalescing, purge propagation, crash recovery, zero persisted PII")
	clusterGate := flag.Bool("cluster", false, "cluster mode: 3-node sharded deployment over loopback HTTP, assert exact matching, Δ-atomicity through node kills and partitions, twin-run determinism")
	flag.Parse()

	m, err := parseMode(*mode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cfg := bench.FieldConfig{
		Mode: m, Seed: *seed, Ops: *ops, Users: *users, Products: *products,
		WriteFraction: *writes, Delta: *delta, Diurnal: *diurnal, BounceModel: *bounce,
		MeanOpsPerSecond: *rate,
	}
	if *chaos {
		runChaos(cfg, *chaosRate)
		return
	}
	if *crash {
		runCrash(cfg, *crashRate)
		return
	}
	if *stitch {
		runStitch(*seed, *delta, *products)
		return
	}
	if *edgeGate {
		runEdge(*seed, *products)
		return
	}
	if *clusterGate {
		runCluster(*seed, *products)
		return
	}

	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		trace, err := workload.ReadTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cfg.Trace = trace
		fmt.Printf("replaying %d ops from %s\n", len(trace), *replay)
	}
	if *record != "" {
		gen := workload.NewGenerator(workload.Config{
			Seed: *seed + 100, Products: *products, Users: *users,
			WriteFraction: *writes, Diurnal: *diurnal,
		})
		trace := gen.Take(*ops)
		f, err := os.Create(*record)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := workload.WriteTrace(f, trace); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("recorded %d ops to %s\n", len(trace), *record)
		cfg.Trace = trace // run what was recorded
	}

	sw := clock.NewStopwatch(clock.System)
	res, err := bench.RunField(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("mode=%s ops=%d users=%d products=%d writes=%.1f%% Δ=%v\n",
		m, *ops, *users, *products, *writes*100, *delta)
	fmt.Printf("simulated %v of traffic in %v wall-clock\n\n",
		res.SimulatedDuration.Round(time.Second), sw.Elapsed().Round(time.Millisecond))

	fmt.Printf("loads            %d\n", res.Loads)
	fmt.Printf("hit ratio        %.1f%%\n", res.HitRatio()*100)
	for _, tier := range []proxy.Source{proxy.SourceDevice, proxy.SourceCDN, proxy.SourceOrigin} {
		h := res.LatencyByTier[tier]
		if h.Count() == 0 {
			continue
		}
		fmt.Printf("  %-7s %5.1f%%  p50=%6.1fms p99=%7.1fms\n", tier,
			float64(res.TierCounts[tier])/float64(res.Loads)*100,
			h.Quantile(0.5)/1000, h.Quantile(0.99)/1000)
	}
	qs := res.Latency.Quantiles(0.5, 0.9, 0.99)
	fmt.Printf("latency          p50=%.1fms p90=%.1fms p99=%.1fms\n", qs[0]/1000, qs[1]/1000, qs[2]/1000)
	for _, region := range netsim.Regions() {
		h := res.LatencyByRegion[region]
		if h.Count() == 0 {
			continue
		}
		fmt.Printf("  %-5s p50=%6.1fms p90=%7.1fms\n", region, h.Quantile(0.5)/1000, h.Quantile(0.9)/1000)
	}
	fmt.Printf("stale reads      %d (%.2f%%), max staleness %v\n",
		res.StaleReads, res.StaleRate()*100, res.MaxStaleness.Round(time.Millisecond))
	fmt.Printf("sketch           %d refreshes, %d bytes on wire\n", res.SketchRefreshes, res.SketchBytes)
	if res.Revalidations > 0 {
		fmt.Printf("revalidations    %d, of which %d answered 304 (%.0f%% header-only)\n",
			res.Revalidations, res.NotModified,
			float64(res.NotModified)/float64(res.Revalidations)*100)
	}
	fmt.Printf("checkouts        %d, bounces %d\n", res.Checkouts, res.Bounces)
	if hot := res.Service.HotPaths(5); len(hot) > 0 {
		fmt.Println("hot paths (service-side fetches):")
		for _, h := range hot {
			fmt.Printf("  %6d  %s\n", h.Hits, h.Path)
		}
	}
	if *diurnal {
		printHourlyCurve(res)
	}
	fmt.Printf("\nGDPR audit:\n%s", res.Service.Auditor())
	fmt.Printf("compliant: %v\n", res.Service.Auditor().Compliant())

	if *obsDump {
		fmt.Println("\nmetrics registry (Prometheus text exposition):")
		if err := res.Service.Obs().WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// runChaos executes the chaos-mode gate: two seed-identical runs under
// the fault profile, then the invariant assertions. Any violation exits 1.
func runChaos(cfg bench.FieldConfig, rate float64) {
	if cfg.Mode != bench.ModeSpeedKit {
		fmt.Fprintln(os.Stderr, "chaos mode requires -mode speedkit")
		os.Exit(2)
	}
	cfg.FaultRules = faults.ChaosRules(rate)

	// Baseline the goroutine count after priming the lazy background
	// machinery (the coarse clock starts its ticker on first use), so the
	// leak check measures the runs, not library initialization.
	_ = clock.CoarseSystem.Now()
	runtime.GC()
	baseline := runtime.NumGoroutine()

	sw := clock.NewStopwatch(clock.System)
	run1, err := bench.RunField(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos run 1:", err)
		os.Exit(1)
	}
	run2, err := bench.RunField(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos run 2:", err)
		os.Exit(1)
	}

	fmt.Printf("chaos: seed=%d ops=%d rate=%.0f%% Δ=%v (%v wall-clock, 2 runs)\n",
		cfg.Seed, cfg.Ops, rate*100, cfg.Delta, sw.Elapsed().Round(time.Millisecond))
	fmt.Printf("loads=%d failed=%d staleMax=%v offline=%d (offline staleMax=%v, unbounded by design)\n",
		run1.Loads, run1.FailedLoads, run1.MaxStaleness.Round(time.Millisecond),
		run1.OfflineServes, run1.OfflineMaxStaleness.Round(time.Millisecond))
	fmt.Print(run1.Faults.String())
	if len(run1.DegradedLoads) > 0 {
		fmt.Println("degraded loads by rung:")
		for reason, n := range run1.DegradedLoads {
			fmt.Printf("  %-18s %d\n", reason, n)
		}
	}

	violations := 0
	fail := func(format string, args ...any) {
		violations++
		fmt.Fprintf(os.Stderr, "CHAOS VIOLATION: "+format+"\n", args...)
	}

	// 1. Determinism: two identical seeds → byte-identical fault schedules.
	h1, h2 := run1.Faults.ScheduleHash(), run2.Faults.ScheduleHash()
	if h1 != h2 {
		fail("fault schedules diverged across seed-identical runs: %x vs %x", h1, h2)
	} else {
		fmt.Printf("schedule hash    %x (identical across runs)\n", h1)
	}

	// 2. Δ-atomicity: no connected load exceeded the staleness bound.
	// Offline-shell serves are the explicit partition fallback — staleness
	// there is unbounded by design (and flagged to the caller via
	// PageLoad.Offline), so they are reported above but not gated on.
	if run1.MaxStaleness > cfg.Delta {
		fail("max staleness %v exceeds Δ=%v", run1.MaxStaleness, cfg.Delta)
	}

	// 3. The chaos actually bit: ≥10%% of sketch and origin calls faulted.
	st := run1.Faults.Stats()
	for _, c := range []faults.Component{faults.SketchFetch, faults.OriginFetch} {
		cs := st[c]
		if cs.Decisions == 0 {
			fail("component %s was never exercised", c)
		} else if cs.Rate() < 0.10 {
			fail("component %s fault rate %.1f%% below the 10%% floor", c, cs.Rate()*100)
		} else {
			fmt.Printf("fault rate       %-13s %.1f%% of %d calls\n", c, cs.Rate()*100, cs.Decisions)
		}
	}

	// 4. Something was actually served despite the chaos.
	if run1.Loads == 0 {
		fail("no loads served")
	}

	// 5. No goroutine leaks from either run.
	runtime.GC()
	leakWatch := clock.NewStopwatch(clock.System)
	for runtime.NumGoroutine() > baseline && leakWatch.Elapsed() < 2*time.Second {
		clock.Sleep(clock.System, 10*time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		fail("goroutine leak: %d before, %d after", baseline, n)
	}

	if violations > 0 {
		fmt.Fprintf(os.Stderr, "chaos: %d invariant violation(s)\n", violations)
		os.Exit(1)
	}
	fmt.Println("chaos: all invariants hold")
}

// runCrash executes the crash-recovery gate: two seed-identical runs with
// durability enabled and kill faults injected, each over its own scratch
// directory, then the durability invariants. Any violation exits 1.
func runCrash(cfg bench.FieldConfig, rate float64) {
	if cfg.Mode != bench.ModeSpeedKit {
		fmt.Fprintln(os.Stderr, "crash mode requires -mode speedkit")
		os.Exit(2)
	}
	cfg.FaultRules = faults.CrashRules(rate)
	cfg.SnapshotEvery = 64

	dirs := [2]string{}
	for i := range dirs {
		d, err := os.MkdirTemp("", "speedkit-crash-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer os.RemoveAll(d)
		dirs[i] = d
	}

	sw := clock.NewStopwatch(clock.System)
	runs := [2]*bench.FieldResult{}
	for i, dir := range dirs {
		c := cfg
		c.DataDir = dir
		r, err := bench.RunField(c)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crash run %d: %v\n", i+1, err)
			os.Exit(1)
		}
		runs[i] = r
	}
	run1, run2 := runs[0], runs[1]

	fmt.Printf("crash: seed=%d ops=%d rate=%.2f%% Δ=%v (%v wall-clock, 2 runs)\n",
		cfg.Seed, cfg.Ops, rate*100, cfg.Delta, sw.Elapsed().Round(time.Millisecond))
	fmt.Printf("loads=%d crashes=%d staleMax=%v recoveries=%v\n",
		run1.Loads, run1.Crashes, run1.MaxStaleness.Round(time.Millisecond), run1.RecoveryModes)
	w := run1.DurableStats.WAL
	fmt.Printf("wal: appends=%d fsyncs=%d replayed=%d truncated=%dB; snapshots=%d (%dB)\n",
		w.Appends, w.Fsyncs, w.Replayed, w.TruncatedBytes,
		run1.DurableStats.Snapshots, run1.DurableStats.SnapshotBytes)

	violations := 0
	fail := func(format string, args ...any) {
		violations++
		fmt.Fprintf(os.Stderr, "CRASH VIOLATION: "+format+"\n", args...)
	}

	// 1. The kills actually fired — recovery was exercised, not skipped.
	if run1.Crashes == 0 {
		fail("no crashes injected — raise -crashrate or -ops")
	}

	// 2. Δ-atomicity held through every crash and recovery.
	if run1.MaxStaleness > cfg.Delta {
		fail("max staleness %v exceeds Δ=%v", run1.MaxStaleness, cfg.Delta)
	}
	if run1.Loads == 0 {
		fail("no loads served")
	}

	// 3. Determinism: identical kill schedules and identical recovered
	// coherence state across the twin runs.
	if h1, h2 := run1.Faults.ScheduleHash(), run2.Faults.ScheduleHash(); h1 != h2 {
		fail("fault schedules diverged: %x vs %x", h1, h2)
	}
	if run1.Crashes != run2.Crashes {
		fail("crash counts diverged: %d vs %d", run1.Crashes, run2.Crashes)
	}
	g1 := run1.Service.SketchServer().Generation()
	g2 := run2.Service.SketchServer().Generation()
	if g1 != g2 {
		fail("twin runs recovered to sketch generations %d vs %d", g1, g2)
	} else {
		fmt.Printf("sketch generation %d (identical across runs)\n", g1)
	}
	if !bytes.Equal(run1.Service.SketchServer().ExportState(), run2.Service.SketchServer().ExportState()) {
		fail("twin runs recovered to different sketch states")
	}

	// 4. GDPR: no PII field name and no simulated user identity in any
	// persisted byte — WAL segments, snapshots, torn temp files included.
	idents := []string{}
	for _, u := range session.Population(cfg.Seed, cfg.Users) {
		for _, v := range []string{u.ID, u.Name, u.Email} {
			if v != "" {
				idents = append(idents, v)
			}
		}
	}
	for _, dir := range dirs {
		hits, err := scanPII(dir, idents)
		if err != nil {
			fail("PII scan over %s: %v", dir, err)
		}
		for _, h := range hits {
			fail("%s in persisted bytes under %s", h, dir)
		}
	}

	if violations > 0 {
		fmt.Fprintf(os.Stderr, "crash: %d invariant violation(s)\n", violations)
		os.Exit(1)
	}
	fmt.Println("crash: all invariants hold")
}

// scanPII walks a durability directory and reports every PII field name
// (len ≥ 4 — two-letter names collide with random binary bytes) and every
// given identity value found in persisted bytes.
func scanPII(dir string, idents []string) ([]string, error) {
	var needles []string
	for _, f := range gdpr.PIIFields() {
		if len(f) >= 4 {
			needles = append(needles, f)
		}
	}
	needles = append(needles, idents...)
	return scanBytes(dir, needles)
}

// scanBytes walks a directory and reports every needle found in any
// persisted byte. Split from scanPII because the edge gate scans cache
// directories holding anonymous HTML verbatim: the shared shell
// legitimately contains block names ("cart") and markup words that
// collide with PII *field names*, so it scans identity *values* only.
func scanBytes(dir string, needles []string) ([]string, error) {
	var hits []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, n := range needles {
			if bytes.Contains(b, []byte(n)) {
				hits = append(hits, fmt.Sprintf("%q found in %s", n, filepath.Base(path)))
			}
		}
		return nil
	})
	return hits, err
}

// printHourlyCurve renders the origin-render rate per simulated hour as
// an ASCII bar chart — the diurnal shape the field study's traffic shows.
func printHourlyCurve(res *bench.FieldResult) {
	ts := res.Service.Analytics()
	start := time.Date(2020, 4, 1, 0, 0, 0, 0, time.UTC) // simulated epoch
	buckets := ts.Downsample("origin_renders", start, start.Add(res.SimulatedDuration), time.Hour)
	if len(buckets) < 2 {
		return
	}
	// Downsample returns per-bucket means of the appended 1-values, so
	// count per hour comes from Range; use counts for the bars.
	fmt.Println("origin fetches per simulated hour:")
	maxN := 1
	counts := make([]int, len(buckets))
	for i, b := range buckets {
		n := len(ts.Range("origin_renders", b.Time, b.Time.Add(time.Hour-time.Nanosecond)))
		counts[i] = n
		if n > maxN {
			maxN = n
		}
	}
	for i, b := range buckets {
		bar := int(float64(counts[i]) / float64(maxN) * 40)
		fmt.Printf("  %02dh %5d %s\n", b.Time.Hour(), counts[i], strings.Repeat("#", bar))
	}
}
