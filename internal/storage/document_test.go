package storage

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"speedkit/internal/clock"
	"speedkit/internal/query"
)

func newTestDocs() (*DocumentStore, *clock.Simulated) {
	clk := clock.NewSimulated(time.Time{})
	return NewDocumentStore(clk), clk
}

func TestDocInsertGet(t *testing.T) {
	s, _ := newTestDocs()
	if err := s.Insert("products", "p1", map[string]any{"price": 10}); err != nil {
		t.Fatal(err)
	}
	doc, ver, err := s.Get("products", "p1")
	if err != nil || ver != 1 || doc["price"] != 10 {
		t.Fatalf("Get = %v v%d err=%v", doc, ver, err)
	}
	if err := s.Insert("products", "p1", nil); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate insert err = %v", err)
	}
	if _, _, err := s.Get("products", "nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing get err = %v", err)
	}
}

func TestDocUpdateVersions(t *testing.T) {
	s, _ := newTestDocs()
	_ = s.Insert("c", "d", map[string]any{"v": 1})
	if err := s.Update("c", "d", map[string]any{"v": 2}); err != nil {
		t.Fatal(err)
	}
	_, ver, _ := s.Get("c", "d")
	if ver != 2 {
		t.Fatalf("version = %d", ver)
	}
	if err := s.Update("c", "missing", nil); !errors.Is(err, ErrNotFound) {
		t.Fatalf("update missing err = %v", err)
	}
}

func TestDocUpsert(t *testing.T) {
	s, _ := newTestDocs()
	s.Upsert("c", "d", map[string]any{"v": 1})
	s.Upsert("c", "d", map[string]any{"v": 2})
	doc, ver, _ := s.Get("c", "d")
	if doc["v"] != 2 || ver != 2 {
		t.Fatalf("upsert result = %v v%d", doc, ver)
	}
}

func TestDocPatch(t *testing.T) {
	s, _ := newTestDocs()
	_ = s.Insert("c", "d", map[string]any{"keep": 1, "drop": 2, "change": 3})
	if err := s.Patch("c", "d", map[string]any{"change": 30, "drop": nil, "add": 4}); err != nil {
		t.Fatal(err)
	}
	doc, _, _ := s.Get("c", "d")
	if doc["keep"] != 1 || doc["change"] != 30 || doc["add"] != 4 {
		t.Fatalf("patched doc = %v", doc)
	}
	if _, has := doc["drop"]; has {
		t.Fatal("nil patch did not remove field")
	}
	if err := s.Patch("c", "missing", nil); !errors.Is(err, ErrNotFound) {
		t.Fatalf("patch missing err = %v", err)
	}
}

func TestDocDelete(t *testing.T) {
	s, _ := newTestDocs()
	_ = s.Insert("c", "d", nil)
	if err := s.Delete("c", "d"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get("c", "d"); !errors.Is(err, ErrNotFound) {
		t.Fatal("deleted doc still readable")
	}
	if err := s.Delete("c", "d"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete err = %v", err)
	}
}

func TestDocIsolationFromCallerMutation(t *testing.T) {
	s, _ := newTestDocs()
	doc := map[string]any{"a": 1, "meta": map[string]any{"x": 1}}
	_ = s.Insert("c", "d", doc)
	doc["a"] = 999
	doc["meta"].(map[string]any)["x"] = 999
	got, _, _ := s.Get("c", "d")
	if got["a"] != 1 || got["meta"].(map[string]any)["x"] != 1 {
		t.Fatal("store aliases caller document")
	}
	got["a"] = 777
	got2, _, _ := s.Get("c", "d")
	if got2["a"] != 1 {
		t.Fatal("returned doc aliases stored document")
	}
}

func TestDocQuery(t *testing.T) {
	s, _ := newTestDocs()
	for i := 0; i < 10; i++ {
		_ = s.Insert("products", fmt.Sprintf("p%02d", i), map[string]any{
			"price":    float64(i * 10),
			"category": map[bool]string{true: "shoes", false: "hats"}[i%2 == 0],
		})
	}
	q := query.MustParse(`products WHERE category = "shoes" AND price < 50 ORDER BY price DESC`)
	res := s.Query(q)
	if len(res) != 3 {
		t.Fatalf("result count = %d, want 3", len(res))
	}
	if res[0]["price"] != 40.0 {
		t.Fatalf("first price = %v", res[0]["price"])
	}
	if res[0]["id"] != "p04" {
		t.Fatalf("id not injected: %v", res[0]["id"])
	}
}

func TestDocQueryEmptyCollection(t *testing.T) {
	s, _ := newTestDocs()
	res := s.Query(query.New("ghost", nil))
	if len(res) != 0 {
		t.Fatalf("got %d docs from ghost collection", len(res))
	}
}

func TestDocQueryStableOrderWithoutSort(t *testing.T) {
	s, _ := newTestDocs()
	for _, id := range []string{"c", "a", "b"} {
		_ = s.Insert("x", id, map[string]any{"v": 1})
	}
	q := query.New("x", nil).WithLimit(2)
	r1 := s.Query(q)
	r2 := s.Query(q)
	if r1[0]["id"] != "a" || r1[1]["id"] != "b" {
		t.Fatalf("unsorted query not in id order: %v,%v", r1[0]["id"], r1[1]["id"])
	}
	if r1[0]["id"] != r2[0]["id"] || r1[1]["id"] != r2[1]["id"] {
		t.Fatal("repeated query unstable")
	}
}

func TestDocChangeStreamOrderAndImages(t *testing.T) {
	s, clk := newTestDocs()
	var events []ChangeEvent
	cancel := s.Watch(func(ev ChangeEvent) { events = append(events, ev) })
	defer cancel()

	_ = s.Insert("c", "d", map[string]any{"v": 1})
	clk.Advance(time.Second)
	_ = s.Update("c", "d", map[string]any{"v": 2})
	_ = s.Delete("c", "d")

	if len(events) != 3 {
		t.Fatalf("events = %d, want 3", len(events))
	}
	if events[0].Kind != ChangeInsert || events[0].Before != nil || events[0].After["v"] != 1 {
		t.Fatalf("insert event wrong: %+v", events[0])
	}
	if events[1].Kind != ChangeUpdate || events[1].Before["v"] != 1 || events[1].After["v"] != 2 {
		t.Fatalf("update event wrong: %+v", events[1])
	}
	if events[2].Kind != ChangeDelete || events[2].Before["v"] != 2 || events[2].After != nil {
		t.Fatalf("delete event wrong: %+v", events[2])
	}
	if !events[1].Time.After(events[0].Time) {
		t.Fatal("event times not advancing with clock")
	}
	if events[0].Version != 1 || events[1].Version != 2 {
		t.Fatalf("versions = %d,%d", events[0].Version, events[1].Version)
	}
}

func TestDocWatchCancel(t *testing.T) {
	s, _ := newTestDocs()
	n := 0
	cancel := s.Watch(func(ChangeEvent) { n++ })
	_ = s.Insert("c", "1", nil)
	cancel()
	_ = s.Insert("c", "2", nil)
	if n != 1 {
		t.Fatalf("watcher saw %d events after cancel, want 1", n)
	}
}

func TestDocChangeEventImagesAreCopies(t *testing.T) {
	s, _ := newTestDocs()
	var captured map[string]any
	cancel := s.Watch(func(ev ChangeEvent) { captured = ev.After })
	defer cancel()
	_ = s.Insert("c", "d", map[string]any{"v": 1})
	captured["v"] = 999
	doc, _, _ := s.Get("c", "d")
	if doc["v"] != 1 {
		t.Fatal("change event aliases stored document")
	}
}

func TestDocChangeKindString(t *testing.T) {
	if ChangeInsert.String() != "insert" || ChangeUpdate.String() != "update" || ChangeDelete.String() != "delete" {
		t.Fatal("kind names wrong")
	}
	if ChangeKind(9).String() == "" {
		t.Fatal("unknown kind empty")
	}
}

func TestDocCollectionsAndCount(t *testing.T) {
	s, _ := newTestDocs()
	_ = s.Insert("b", "1", nil)
	_ = s.Insert("a", "1", nil)
	_ = s.Insert("a", "2", nil)
	colls := s.Collections()
	if len(colls) != 2 || colls[0] != "a" || colls[1] != "b" {
		t.Fatalf("collections = %v", colls)
	}
	if s.Count("a") != 2 || s.Count("ghost") != 0 {
		t.Fatalf("counts = %d,%d", s.Count("a"), s.Count("ghost"))
	}
}

func TestDocStats(t *testing.T) {
	s, _ := newTestDocs()
	_ = s.Insert("c", "1", nil)
	_ = s.Update("c", "1", nil)
	_ = s.Delete("c", "1")
	_, _, _ = s.Get("c", "1")
	s.Query(query.New("c", nil))
	st := s.Stats()
	if st.Inserts != 1 || st.Updates != 1 || st.Deletes != 1 || st.Reads != 1 || st.Queries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDocConcurrentWritersKeepStreamOrdered(t *testing.T) {
	s, _ := newTestDocs()
	var mu sync.Mutex
	versions := map[string][]uint64{}
	cancel := s.Watch(func(ev ChangeEvent) {
		mu.Lock()
		versions[ev.ID] = append(versions[ev.ID], ev.Version)
		mu.Unlock()
	})
	defer cancel()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("doc-%d", w)
			_ = s.Insert("c", id, map[string]any{"v": 0})
			for i := 1; i <= 50; i++ {
				_ = s.Update("c", id, map[string]any{"v": i})
			}
		}(w)
	}
	wg.Wait()
	for id, vs := range versions {
		if len(vs) != 51 {
			t.Fatalf("%s: %d events", id, len(vs))
		}
		for i, v := range vs {
			if v != uint64(i+1) {
				t.Fatalf("%s: version %d at position %d — stream out of order", id, v, i)
			}
		}
	}
}
