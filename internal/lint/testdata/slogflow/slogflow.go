// Package slogflow is the taint fixture for the structured-log sink:
// interprocedural flows of PII values into slog record positions, and
// the sanitizer cut-offs that make such flows legal.
package slogflow

import (
	"context"

	"speedkit/internal/gdpr"
	"speedkit/internal/session"
	"speedkit/internal/slog"
)

// describe is hop zero: a pure transformer, keeps taint.
func describe(u *session.User) string { return u.Email }

// emit is the hop that reaches the sink; reported at its callers.
func emit(ctx context.Context, lg *slog.Logger, v string) {
	lg.Info(ctx).Str("detail", v).Msg("emitted")
}

func LeakLog(ctx context.Context, lg *slog.Logger, u *session.User) {
	emit(ctx, lg, describe(u)) // want "reaches structured log record"
}

// --- direct (one-hop) sink calls are caught too ---

func LeakMsg(ctx context.Context, lg *slog.Logger, u *session.User) {
	lg.Warn(ctx).Msg(u.Name) // want "reaches structured log record"
}

// --- sanitizers cut the flow ---

func CleanPseudonymized(ctx context.Context, lg *slog.Logger, u *session.User) {
	emit(ctx, lg, gdpr.Pseudonymize(u.ID))
}

// --- anonymous protocol state is clean ---

func CleanProtocol(ctx context.Context, lg *slog.Logger, gen uint64) {
	lg.Info(ctx).Uint("generation", gen).Msg("sketch rotated")
}
