package invalidb

import (
	"fmt"
	"testing"

	"speedkit/internal/query"
	"speedkit/internal/storage"
)

// benchFixture registers `queries` continuous queries spread evenly over
// `collections` collections and precomputes a round-robin event stream.
// Roughly half the queries of an event's collection match it (Gte over a
// uniform threshold), so the bench exercises both the reject and the
// classify+collect paths.
func benchFixture(b *testing.B, shards, queries, collections int) (*Engine, []storage.ChangeEvent) {
	b.Helper()
	e := New(Config{Shards: shards})
	for i := 0; i < queries; i++ {
		coll := fmt.Sprintf("coll-%03d", i%collections)
		e.Register(fmt.Sprintf("reg-%05d", i), query.Query{
			Collection: coll,
			Filter:     query.Gte("price", float64(i%100)),
		})
	}
	events := make([]storage.ChangeEvent, 256)
	for i := range events {
		coll := fmt.Sprintf("coll-%03d", i%collections)
		events[i] = storage.ChangeEvent{
			Collection: coll,
			ID:         fmt.Sprintf("doc-%04d", i),
			Kind:       storage.ChangeUpdate,
			Before:     map[string]any{"price": float64(40 + i%10)},
			After:      map[string]any{"price": float64(45 + i%10)},
			Version:    uint64(i + 1),
		}
	}
	return e, events
}

// BenchmarkInvalidationMatching measures per-event matching cost as the
// shard count grows. This is the bench behind BENCH_invalidation.json
// (suite "invalidation-matching"): with queries partitioned by collection,
// matching one change event should touch a single shard, so per-event cost
// drops near-linearly from shards-1 to shards-8.
func BenchmarkInvalidationMatching(b *testing.B) {
	const (
		queries     = 1024
		collections = 64
	)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			e, events := benchFixture(b, shards, queries, collections)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Process(events[i%len(events)])
			}
		})
	}
}
