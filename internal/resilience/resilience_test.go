package resilience

import (
	"math/rand"
	"testing"
	"time"

	"speedkit/internal/clock"
)

func TestBackoffExponentialGrowth(t *testing.T) {
	b := Backoff{Base: 50 * time.Millisecond, Factor: 2, Max: 2 * time.Second}
	want := []time.Duration{
		50 * time.Millisecond,
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1600 * time.Millisecond,
		2 * time.Second,
		2 * time.Second,
	}
	for n, w := range want {
		if got := b.Delay(nil, n); got != w {
			t.Fatalf("Delay(%d) = %v, want %v", n, got, w)
		}
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Factor: 2, Max: time.Second, Jitter: 0.5}
	rng := rand.New(rand.NewSource(1))
	for n := 0; n < 6; n++ {
		unjittered := Backoff{Base: b.Base, Factor: b.Factor, Max: b.Max}.Delay(nil, n)
		lo := time.Duration(float64(unjittered) * 0.5)
		hi := time.Duration(float64(unjittered) * 1.5)
		for i := 0; i < 200; i++ {
			d := b.Delay(rng, n)
			if d < lo || d >= hi+time.Nanosecond {
				t.Fatalf("Delay(%d) = %v outside [%v, %v)", n, d, lo, hi)
			}
		}
	}
}

func TestBackoffDeterministicWithSeed(t *testing.T) {
	b := Default()
	seq := func() []time.Duration {
		rng := rand.New(rand.NewSource(99))
		out := make([]time.Duration, 8)
		for n := range out {
			out[n] = b.Delay(rng, n)
		}
		return out
	}
	a, c := seq(), seq()
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("attempt %d: %v vs %v", i, a[i], c[i])
		}
	}
}

func TestBackoffZeroValueSane(t *testing.T) {
	var b Backoff
	if d := b.Delay(nil, 0); d <= 0 {
		t.Fatalf("zero-value Delay(0) = %v", d)
	}
	// Zero Max means uncapped: growth continues but must never go
	// negative through float conversion.
	if d := b.Delay(nil, 30); d <= 0 {
		t.Fatalf("zero-value Delay(30) = %v, want positive", d)
	}
}

func newTestBreaker(clk clock.Clock) *Breaker {
	return NewBreaker(BreakerConfig{Clock: clk, Threshold: 3, Cooldown: 10 * time.Second})
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	clk := clock.NewSimulated(time.Time{})
	br := newTestBreaker(clk)
	for i := 0; i < 2; i++ {
		if !br.Allow() {
			t.Fatalf("closed breaker rejected call %d", i)
		}
		br.Failure()
		if br.State() != Closed {
			t.Fatalf("opened after %d failures, threshold is 3", i+1)
		}
	}
	br.Allow()
	br.Failure()
	if br.State() != Open {
		t.Fatalf("state after 3 failures = %v, want open", br.State())
	}
	if br.Allow() {
		t.Fatal("open breaker admitted a call inside cooldown")
	}
	if st := br.Stats(); st.Opens != 1 || st.Rejected != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	clk := clock.NewSimulated(time.Time{})
	br := newTestBreaker(clk)
	br.Failure()
	br.Failure()
	br.Success()
	br.Failure()
	br.Failure()
	if br.State() != Closed {
		t.Fatal("success did not reset the consecutive-failure count")
	}
}

func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	clk := clock.NewSimulated(time.Time{})
	br := newTestBreaker(clk)
	for i := 0; i < 3; i++ {
		br.Failure()
	}
	clk.Advance(10 * time.Second)
	if br.State() != HalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", br.State())
	}
	if !br.Allow() {
		t.Fatal("half-open breaker rejected the probe")
	}
	// Concurrent caller while the probe is in flight is rejected.
	if br.Allow() {
		t.Fatal("second call admitted during half-open probe")
	}
	br.Success()
	if br.State() != Closed {
		t.Fatalf("state after probe success = %v, want closed", br.State())
	}
	if !br.Allow() {
		t.Fatal("closed breaker rejected a call after recovery")
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	clk := clock.NewSimulated(time.Time{})
	br := newTestBreaker(clk)
	for i := 0; i < 3; i++ {
		br.Failure()
	}
	clk.Advance(10 * time.Second)
	if !br.Allow() {
		t.Fatal("probe rejected")
	}
	br.Failure()
	if br.State() != Open {
		t.Fatalf("state after probe failure = %v, want open", br.State())
	}
	if br.Allow() {
		t.Fatal("re-opened breaker admitted a call immediately")
	}
	// A fresh cooldown applies from the re-open.
	clk.Advance(10 * time.Second)
	if !br.Allow() {
		t.Fatal("no probe admitted after second cooldown")
	}
	br.Success()
	if st := br.Stats(); st.Opens != 2 || st.Probes != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBreakerNilSafe(t *testing.T) {
	var br *Breaker
	if !br.Allow() {
		t.Fatal("nil breaker rejected a call")
	}
	br.Success()
	br.Failure()
	if br.State() != Closed {
		t.Fatal("nil breaker not closed")
	}
	if br.Stats() != (BreakerStats{}) {
		t.Fatal("nil breaker has stats")
	}
}

func TestBreakerDefaults(t *testing.T) {
	br := NewBreaker(BreakerConfig{Clock: clock.NewSimulated(time.Time{})})
	for i := 0; i < 4; i++ {
		br.Failure()
	}
	if br.State() != Closed {
		t.Fatal("default threshold should be 5")
	}
	br.Failure()
	if br.State() != Open {
		t.Fatal("breaker did not open at default threshold")
	}
}

func TestClockSleepSimulatedNoop(t *testing.T) {
	clk := clock.NewSimulated(time.Time{})
	sw := clock.NewStopwatch(clock.System)
	clock.Sleep(clk, time.Hour)
	if sw.Elapsed() > 5*time.Second {
		t.Fatal("Sleep on a simulated clock blocked for real time")
	}
}

func TestClockSleepRealBlocks(t *testing.T) {
	sw := clock.NewStopwatch(clock.System)
	clock.Sleep(clock.System, 5*time.Millisecond)
	if sw.Elapsed() < 5*time.Millisecond {
		t.Fatalf("real Sleep returned after %v, want >= 5ms", sw.Elapsed())
	}
}
