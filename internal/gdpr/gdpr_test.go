package gdpr

import (
	"strings"
	"testing"
	"time"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		field string
		want  Sensitivity
	}{
		{"email", PII},
		{"Email", PII}, // case-insensitive
		{"cart", PII},
		{"session_token", Pseudonymous},
		{"path", Anonymous},
		{"product_id", Anonymous},
		{"sketch", Anonymous},
		{"some_new_field", PII}, // fail closed
	}
	for _, c := range cases {
		if got := Classify(c.field); got != c.want {
			t.Errorf("Classify(%q) = %v, want %v", c.field, got, c.want)
		}
	}
}

func TestSensitivityString(t *testing.T) {
	if Anonymous.String() != "anonymous" || Pseudonymous.String() != "pseudonymous" ||
		PII.String() != "pii" || Sensitivity(9).String() != "unknown" {
		t.Fatal("names wrong")
	}
}

func TestPseudonymizeStableAndOpaque(t *testing.T) {
	a := Pseudonymize("u123")
	b := Pseudonymize("u123")
	c := Pseudonymize("u124")
	if a != b {
		t.Fatal("pseudonymization unstable")
	}
	if a == c {
		t.Fatal("distinct IDs collide")
	}
	if strings.Contains(a, "u123") {
		t.Fatal("token leaks raw ID")
	}
	if !strings.HasPrefix(a, "p_") || len(a) != 18 {
		t.Fatalf("token format: %q", a)
	}
}

func TestStripPII(t *testing.T) {
	fields := map[string]string{
		"path":      "/products/1",
		"email":     "a@b.c",
		"cart":      "p1:2",
		"region":    "eu",
		"ab_bucket": "b",
	}
	clean, removed := StripPII(fields)
	if len(removed) != 2 || removed[0] != "cart" || removed[1] != "email" {
		t.Fatalf("removed = %v", removed)
	}
	if _, has := clean["email"]; has {
		t.Fatal("PII survived strip")
	}
	if clean["path"] != "/products/1" || clean["ab_bucket"] != "b" {
		t.Fatalf("clean = %v", clean)
	}
	// Input must not be modified.
	if len(fields) != 5 {
		t.Fatal("input mutated")
	}
}

func TestConsentLedgerLifecycle(t *testing.T) {
	l := NewConsentLedger()
	t0 := time.Unix(100, 0)
	if l.Allowed("u1", PurposePersonalization) {
		t.Fatal("consent default is opt-out, must be false")
	}
	l.Grant("u1", PurposePersonalization, t0)
	if !l.Allowed("u1", PurposePersonalization) {
		t.Fatal("granted consent not recorded")
	}
	if l.Allowed("u1", PurposeAnalytics) {
		t.Fatal("consent leaked across purposes")
	}
	at, ok := l.GrantedAt("u1", PurposePersonalization)
	if !ok || !at.Equal(t0) {
		t.Fatalf("GrantedAt = %v, %v", at, ok)
	}
	l.Revoke("u1", PurposePersonalization, t0.Add(time.Hour))
	if l.Allowed("u1", PurposePersonalization) {
		t.Fatal("revocation ignored")
	}
	at, _ = l.GrantedAt("u1", PurposePersonalization)
	if !at.Equal(t0.Add(time.Hour)) {
		t.Fatal("revocation timestamp not recorded")
	}
}

func TestConsentLedgerErase(t *testing.T) {
	l := NewConsentLedger()
	l.Grant("u1", PurposeAnalytics, time.Unix(0, 0))
	if l.Users() != 1 {
		t.Fatalf("users = %d", l.Users())
	}
	l.Erase("u1")
	if l.Users() != 0 || l.Allowed("u1", PurposeAnalytics) {
		t.Fatal("erasure incomplete")
	}
	if _, ok := l.GrantedAt("u1", PurposeAnalytics); ok {
		t.Fatal("erased record still readable")
	}
}

func TestAuditorFlowsAndReport(t *testing.T) {
	a := NewAuditor()
	pii := a.RecordFlow(BoundaryCDN, []string{"path", "email", "cart", "session_token"})
	if len(pii) != 2 || pii[0] != "cart" || pii[1] != "email" {
		t.Fatalf("pii = %v", pii)
	}
	a.RecordFlow(BoundaryCDN, []string{"path"})
	a.RecordFlow(BoundaryOrigin, []string{"email"})

	r := a.Report(BoundaryCDN)
	if r.Requests != 2 || r.RequestsWithPII != 1 || r.PIIFieldCount != 2 {
		t.Fatalf("cdn report = %+v", r)
	}
	if r.AnonymousCount != 2 || r.PseudonymousCount != 1 {
		t.Fatalf("cdn counts = %+v", r)
	}
	if len(r.TopPIIFields) != 2 {
		t.Fatalf("top fields = %v", r.TopPIIFields)
	}
	if a.Compliant() {
		t.Fatal("auditor with CDN PII claims compliance")
	}
}

func TestAuditorCompliantWhenCDNIsClean(t *testing.T) {
	a := NewAuditor()
	a.RecordFlow(BoundaryCDN, []string{"path", "product_id"})
	a.RecordFlow(BoundaryDevice, []string{"email", "cart"}) // fine on device
	a.RecordFlow(BoundaryOrigin, []string{"email"})         // fine first-party
	if !a.Compliant() {
		t.Fatal("clean CDN flagged non-compliant")
	}
}

func TestAuditorEmptyBoundary(t *testing.T) {
	a := NewAuditor()
	r := a.Report(BoundaryOrigin)
	if r.Requests != 0 || len(r.TopPIIFields) != 0 {
		t.Fatalf("empty report = %+v", r)
	}
}

func TestAuditorTopFieldsOrdered(t *testing.T) {
	a := NewAuditor()
	for i := 0; i < 3; i++ {
		a.RecordFlow(BoundaryCDN, []string{"email"})
	}
	a.RecordFlow(BoundaryCDN, []string{"cart"})
	r := a.Report(BoundaryCDN)
	if r.TopPIIFields[0] != "email" || r.TopPIIFields[1] != "cart" {
		t.Fatalf("order = %v", r.TopPIIFields)
	}
}

func TestAuditorString(t *testing.T) {
	a := NewAuditor()
	a.RecordFlow(BoundaryCDN, []string{"email"})
	s := a.String()
	if !strings.Contains(s, "cdn") || !strings.Contains(s, "device") {
		t.Fatalf("summary missing boundaries:\n%s", s)
	}
}
