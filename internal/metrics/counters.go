package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"speedkit/internal/clock"
)

// Counter is a monotonically increasing counter safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// NewCounter returns a counter starting at zero.
func NewCounter() *Counter { return &Counter{} }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n to the counter. Counters are monotonic by contract: a zero
// or negative delta is dropped silently — never applied, never an error
// — so a miscomputed negative adjustment cannot make a counter run
// backwards (which would corrupt rates derived from it). Callers that
// need a value that can go down want a Gauge instead.
func (c *Counter) Add(n int) {
	if n <= 0 {
		return
	}
	c.v.Add(uint64(n))
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Reset sets the counter back to zero. Intended for test/bench harness use
// between runs, not for production counters.
func (c *Counter) Reset() { c.v.Store(0) }

// Gauge is a settable instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// NewGauge returns a gauge at zero.
func NewGauge() *Gauge { return &Gauge{} }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Ratio reports a/(a+b) as a percentage-friendly float, or 0 when both are
// zero. It is the canonical helper for hit-ratio reporting.
func Ratio(a, b uint64) float64 {
	if a+b == 0 {
		return 0
	}
	return float64(a) / float64(a+b)
}

// Meter tracks an event rate over a sliding window of fixed-width slots.
// It answers "events per second over the last W" without unbounded memory.
type Meter struct {
	mu        sync.Mutex
	slotWidth time.Duration
	slots     []uint64  // guarded by mu
	slotStart time.Time // guarded by mu
	slotIdx   int       // guarded by mu
	now       func() time.Time
}

// NewMeter creates a meter with the given window divided into 16 slots.
// window must be positive.
func NewMeter(window time.Duration) *Meter {
	if window <= 0 {
		window = time.Second
	}
	return &Meter{
		slotWidth: window / 16,
		slots:     make([]uint64, 16),
		// Coarse time is plenty for ≥62ms slots and keeps Mark cheap.
		now: clock.CoarseSystem.Now,
	}
}

// newMeterAt is a test hook that injects a clock.
func newMeterAt(window time.Duration, now func() time.Time) *Meter {
	m := NewMeter(window)
	m.now = now
	return m
}

// advance rotates slots forward to the current time, zeroing expired ones.
// The caller must hold m.mu.
func (m *Meter) advance(t time.Time) {
	if m.slotStart.IsZero() {
		m.slotStart = t
		return
	}
	for t.Sub(m.slotStart) >= m.slotWidth {
		m.slotIdx = (m.slotIdx + 1) % len(m.slots)
		m.slots[m.slotIdx] = 0
		m.slotStart = m.slotStart.Add(m.slotWidth)
		// If the caller was idle for longer than the whole window, snap the
		// slot origin forward instead of looping thousands of times.
		if t.Sub(m.slotStart) >= m.slotWidth*time.Duration(2*len(m.slots)) {
			for i := range m.slots {
				m.slots[i] = 0
			}
			m.slotStart = t
			break
		}
	}
}

// Mark records n events at the current time.
func (m *Meter) Mark(n uint64) {
	t := m.now()
	m.mu.Lock()
	m.advance(t)
	m.slots[m.slotIdx] += n
	m.mu.Unlock()
}

// Rate returns events per second over the window.
func (m *Meter) Rate() float64 {
	t := m.now()
	m.mu.Lock()
	m.advance(t)
	var total uint64
	for _, s := range m.slots {
		total += s
	}
	window := m.slotWidth * time.Duration(len(m.slots))
	m.mu.Unlock()
	return float64(total) / window.Seconds()
}

// Registry is a labeled collection of metrics so that subsystems can expose
// their instruments without global state. Lookups create on first use.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter   // guarded by mu
	gauges     map[string]*Gauge     // guarded by mu
	histograms map[string]*Histogram // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = NewCounter()
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = NewGauge()
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it if
// needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram()
		r.histograms[name] = h
	}
	return h
}

// Dump renders every registered metric sorted by name, one per line. It is
// the human-readable output used by the bench harness.
func (r *Registry) Dump() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	lines := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for name, c := range r.counters {
		lines = append(lines, fmt.Sprintf("counter %-40s %d", name, c.Value()))
	}
	for name, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("gauge   %-40s %d", name, g.Value()))
	}
	for name, h := range r.histograms {
		lines = append(lines, fmt.Sprintf("histo   %-40s %s", name, h.Snapshot()))
	}
	sort.Strings(lines)
	out := ""
	for _, l := range lines {
		out += l + "\n"
	}
	return out
}
