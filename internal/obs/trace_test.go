package obs

import (
	"context"
	"testing"
	"time"

	"speedkit/internal/clock"
	"speedkit/internal/tracectx"
)

func TestTracerSamplesOneInN(t *testing.T) {
	clk := clock.NewSimulated(time.Time{})
	tr := NewTracer(clk, 4, 16)
	var sampled int
	for i := 0; i < 100; i++ {
		if s := tr.Start("page_load", "/p"); s != nil {
			sampled++
			tr.Finish(s)
		}
	}
	if sampled != 25 {
		t.Fatalf("sampled %d of 100 at 1-in-4, want 25", sampled)
	}
	st := tr.Stats()
	if st.Started != 100 || st.Sampled != 25 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTracerDisabledAndNil(t *testing.T) {
	var nilT *Tracer
	if nilT.Start("k", "/p") != nil {
		t.Fatal("nil tracer sampled")
	}
	nilT.Finish(&Trace{})
	nilT.SetSampleEvery(1)
	if nilT.Recent(10) != nil || nilT.SampleEvery() != 0 {
		t.Fatal("nil tracer is not inert")
	}

	off := NewTracer(clock.NewSimulated(time.Time{}), 0, 4)
	if off.Start("k", "/p") != nil {
		t.Fatal("disabled tracer sampled")
	}
	off.SetSampleEvery(1)
	if off.Start("k", "/p") == nil {
		t.Fatal("re-enabled tracer did not sample")
	}
}

func TestNilTraceMethodsAreNoOps(t *testing.T) {
	var tr *Trace
	tr.AddSpan("s", "cdn", time.Second)
	tr.SetSource("cdn")
	tr.SetSketch(3, time.Second, time.Minute)
	tr.SetBlocks(2, time.Millisecond)
	tr.SetTotal(time.Second)
	tr.MarkSketchRefreshed()
	tr.MarkRevalidated()
	tr.MarkOffline()
	// Reaching here without a panic is the assertion.
}

func TestTraceRecordsProtocolOutcomes(t *testing.T) {
	clk := clock.NewSimulated(time.Time{})
	tcr := NewTracer(clk, 1, 8)
	tr := tcr.Start("page_load", "/product/p1")
	tr.SetSketch(7, 30*time.Second, 60*time.Second)
	tr.AddSpan("sketch.fetch", "cdn", 5*time.Millisecond)
	tr.AddSpan("shell.fetch", "origin", 40*time.Millisecond)
	tr.SetSource("origin")
	tr.SetBlocks(3, 12*time.Millisecond)
	tr.MarkRevalidated()
	tr.SetTotal(57 * time.Millisecond)
	tcr.Finish(tr)

	got := tcr.Recent(1)
	if len(got) != 1 {
		t.Fatalf("recent = %d traces, want 1", len(got))
	}
	g := got[0]
	if g.SketchGeneration != 7 || g.DeltaBudget != 0.5 {
		t.Fatalf("sketch state = gen %d budget %v, want 7, 0.5", g.SketchGeneration, g.DeltaBudget)
	}
	if g.Source != "origin" || !g.Revalidated || g.Blocks != 3 {
		t.Fatalf("outcomes = %+v", g)
	}
	if len(g.Spans) != 2 || g.Spans[0].Name != "sketch.fetch" || g.Spans[1].Tier != "origin" {
		t.Fatalf("spans = %+v", g.Spans)
	}
}

func TestTracerRingKeepsNewestFirst(t *testing.T) {
	clk := clock.NewSimulated(time.Time{})
	tcr := NewTracer(clk, 1, 4)
	for i := 0; i < 10; i++ {
		tr := tcr.Start("page_load", "/p")
		tcr.Finish(tr)
	}
	got := tcr.Recent(0)
	if len(got) != 4 {
		t.Fatalf("ring holds %d, want 4", len(got))
	}
	// IDs 7,8,9,10 survive; newest first.
	want := []uint64{10, 9, 8, 7}
	for i, tr := range got {
		if tr.ID != want[i] {
			t.Fatalf("recent[%d].ID = %d, want %d (full: %v)", i, tr.ID, want[i], ids(got))
		}
	}
	if got2 := tcr.Recent(2); len(got2) != 2 || got2[0].ID != 10 || got2[1].ID != 9 {
		t.Fatalf("Recent(2) = %v", ids(got2))
	}
}

func ids(trs []*Trace) []uint64 {
	out := make([]uint64, len(trs))
	for i, tr := range trs {
		out[i] = tr.ID
	}
	return out
}

func TestTracerAssignsCausalIdentity(t *testing.T) {
	clk := clock.NewSimulated(time.Time{})
	tcr := NewTracerSeeded(clk, 1, 8, 42)
	a := tcr.Start("page_load", "/p")
	b := tcr.Start("page_load", "/p")
	for _, tr := range []*Trace{a, b} {
		if tr.TraceID.IsZero() || tr.SpanID.IsZero() {
			t.Fatalf("sampled trace missing identity: %+v", tr)
		}
		if !tr.ParentSpanID.IsZero() || tr.Remote {
			t.Fatalf("locally rooted trace claims a parent: %+v", tr)
		}
	}
	if a.TraceID == b.TraceID {
		t.Fatal("two local roots share a trace ID")
	}
	// Same seed replays the same identity stream.
	twin := NewTracerSeeded(clock.NewSimulated(time.Time{}), 1, 8, 42)
	if ta := twin.Start("page_load", "/p"); ta.TraceID != a.TraceID || ta.SpanID != a.SpanID {
		t.Fatal("seeded tracers diverged")
	}
	sc := a.SpanContext()
	if !sc.Valid() || !sc.Sampled || sc.TraceID != a.TraceID || sc.SpanID != a.SpanID {
		t.Fatalf("SpanContext = %+v", sc)
	}
	var nilTr *Trace
	if nilTr.SpanContext().Valid() {
		t.Fatal("nil trace produced a valid span context")
	}
}

func TestStartRemoteInheritsSamplingBothWays(t *testing.T) {
	clk := clock.NewSimulated(time.Time{})
	parentTcr := NewTracerSeeded(clk, 1, 8, 1)
	parent := parentTcr.Start("page_load", "/p")

	// Sampled parent forces recording even when the local knob would
	// never draw the request.
	server := NewTracerSeeded(clk, 1<<30, 8, 2)
	child := server.StartRemote("http.page", "/p", parent.SpanContext())
	if child == nil {
		t.Fatal("sampled parent was not honored")
	}
	if child.TraceID != parent.TraceID {
		t.Fatalf("child trace ID %s != parent %s", child.TraceID, parent.TraceID)
	}
	if child.ParentSpanID != parent.SpanID || !child.Remote {
		t.Fatalf("child parentage = %+v", child)
	}
	if child.SpanID == parent.SpanID || child.SpanID.IsZero() {
		t.Fatalf("child span ID %s not distinct from parent", child.SpanID)
	}

	// Unsampled parent forces nil even when the local knob samples
	// everything.
	unsampled := parent.SpanContext()
	unsampled.Sampled = false
	eager := NewTracerSeeded(clk, 1, 8, 3)
	if tr := eager.StartRemote("http.page", "/p", unsampled); tr != nil {
		t.Fatalf("unsampled parent was recorded: %+v", tr)
	}

	// Invalid parent (malformed header already collapsed to zero) falls
	// back to a fresh local root with a fresh trace ID.
	root := eager.StartRemote("http.page", "/p", tracectx.SpanContext{})
	if root == nil {
		t.Fatal("invalid parent did not fall back to local root")
	}
	if root.TraceID == parent.TraceID || root.Remote || !root.ParentSpanID.IsZero() {
		t.Fatalf("fallback root inherited remote state: %+v", root)
	}
}

func TestByTraceID(t *testing.T) {
	clk := clock.NewSimulated(time.Time{})
	tcr := NewTracerSeeded(clk, 1, 4, 5)
	a := tcr.Start("http.page", "/p")
	// A second trace joining a's causal identity (the invalidation the
	// write caused).
	inv := tcr.StartRemote("invalidation", "/p", a.SpanContext())
	other := tcr.Start("http.page", "/q")
	tcr.Finish(a)
	tcr.Finish(inv)
	tcr.Finish(other)

	got := tcr.ByTraceID(a.TraceID)
	if len(got) != 2 || got[0] != a || got[1] != inv {
		t.Fatalf("ByTraceID returned %d traces, want [a inv]", len(got))
	}
	if got := tcr.ByTraceID(other.TraceID); len(got) != 1 || got[0] != other {
		t.Fatalf("ByTraceID(other) = %v", got)
	}
	if tcr.ByTraceID(tracectx.TraceID{}) != nil {
		t.Fatal("zero ID matched")
	}
	var nilT *Tracer
	if nilT.ByTraceID(a.TraceID) != nil {
		t.Fatal("nil tracer returned traces")
	}

	// Ring wrap: oldest evicted, order preserved oldest→newest.
	for i := 0; i < 4; i++ {
		tr := tcr.StartRemote("evict", "/e", a.SpanContext())
		tcr.Finish(tr)
	}
	wrapped := tcr.ByTraceID(a.TraceID)
	if len(wrapped) != 4 {
		t.Fatalf("after wrap ByTraceID = %d traces, want 4 evict traces", len(wrapped))
	}
	for _, tr := range wrapped {
		if tr.Kind != "evict" {
			t.Fatalf("stale trace survived wrap: %+v", tr)
		}
	}
}

func TestTraceEventsRecordInOrder(t *testing.T) {
	clk := clock.NewSimulated(time.Time{})
	tcr := NewTracer(clk, 1, 4)
	tr := tcr.Start("page_load", "/p")
	tr.AddEvent("retry", "sketch attempt=1")
	tr.AddEvent("breaker.open", "origin")
	tr.AddEvent("degraded", "stale_shell")
	if len(tr.Events) != 3 || tr.Events[0].Name != "retry" || tr.Events[2].Detail != "stale_shell" {
		t.Fatalf("events = %+v", tr.Events)
	}
	var nilTr *Trace
	nilTr.AddEvent("x", "y") // must not panic
}

func TestExportTracesDeterministic(t *testing.T) {
	build := func() []*Trace {
		clk := clock.NewSimulated(time.Unix(1700000000, 0).UTC())
		tcr := NewTracerSeeded(clk, 1, 4, 42)
		a := tcr.Start("page_load", "/product/p1")
		a.AddSpan("sketch.fetch", "cdn", 5*time.Millisecond)
		a.AddEvent("retry", "sketch attempt=1")
		a.SetSource("cdn")
		a.SetTotal(9 * time.Millisecond)
		tcr.Finish(a)
		b := tcr.StartRemote("http.page", "/product/p1", a.SpanContext())
		b.SetTotal(3 * time.Millisecond)
		tcr.Finish(b)
		return tcr.Recent(0)
	}
	x, err := ExportTraces(build())
	if err != nil {
		t.Fatal(err)
	}
	y, err := ExportTraces(build())
	if err != nil {
		t.Fatal(err)
	}
	if string(x) != string(y) {
		t.Fatalf("twin exports differ:\n%s\n---\n%s", x, y)
	}
	if empty, err := ExportTraces(nil); err != nil || string(empty) != "[]" {
		t.Fatalf("ExportTraces(nil) = %q, %v", empty, err)
	}
}

func TestContextCarriesTrace(t *testing.T) {
	clk := clock.NewSimulated(time.Time{})
	tcr := NewTracer(clk, 1, 4)
	tr := tcr.Start("page_load", "/p")
	ctx := ContextWithTrace(context.Background(), tr)
	if got := TraceFromContext(ctx); got != tr {
		t.Fatalf("TraceFromContext = %v, want %v", got, tr)
	}
	if TraceFromContext(context.Background()) != nil {
		t.Fatal("empty ctx yielded a trace")
	}
	// Nil traces are not stored: the unsampled path stays free.
	if ctx2 := ContextWithTrace(context.Background(), nil); TraceFromContext(ctx2) != nil {
		t.Fatal("nil trace stored in ctx")
	}
}
