// Package walfixture seeds gdprboundary violations for the durability
// tier. The fixture test loads it under the synthetic import path
// "fixture/internal/wal", so the analyzer treats it as shared
// infrastructure — everything it persists survives a crash on disk, which
// is exactly why identity must never reach it.
package walfixture

import (
	"speedkit/internal/gdpr" // want "identity-bearing package"
)

// Record exposes a PII-classified field in a durability API: anything in
// this struct gets framed into the log verbatim.
type Record struct {
	UserID  string // want "PII field"
	Payload []byte
}

// Frame is an anonymous log frame: no finding.
type Frame struct {
	LSN     uint64
	Payload []byte
}

// Append persists anonymous bytes only: no finding.
func Append(f Frame) uint64 { return f.LSN }

var _ *gdpr.ConsentLedger
