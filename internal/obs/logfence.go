package obs

import (
	"speedkit/internal/gdpr"
	"speedkit/internal/slog"
)

// The structured logger lives below the GDPR boundary and therefore
// cannot import the classification itself. This init installs the
// runtime log-field fence — every field name the GDPR model classifies
// as PII becomes a denied log key — from the one package that sits on
// the telemetry side and already depends on gdpr. Any binary that links
// telemetry (server, sim, every cmd) gets the fence for free; the
// static piiflow/obslabels analyzers remain the primary gate, this is
// the belt-and-braces behind them.
func init() {
	slog.DenyKeys(gdpr.PIIFields()...)
}
