// Package httpapi exposes a Speed Kit service over HTTP — the deployable
// surface of the reproduction. The wire surface is versioned under /v1/;
// endpoints mirror what the production system's client proxy talks to:
//
//	GET  /v1/sketch                      the binary client sketch (cacheable for Δ)
//	GET  /v1/page?path=...               anonymous page shell via the CDN path;
//	                                     honors If-None-Match for conditional GETs
//	GET  /v1/blocks?names=a,b&user=...   first-party personalized fragments (JSON)
//	POST /v1/write?product=&price=       a catalog write driving the pipeline
//	POST /v1/purge?path=...              purge one path from the CDN tier and
//	                                     notify registered purge listeners (edges)
//
// The unversioned aliases (/sketch, /page, /blocks, /admin/write) are
// kept for one release so deployed clients keep working; they serve the
// same handlers. Failures on every endpoint return the typed JSON error
// envelope {"error":{"code","message"}} (see ErrorBody).
//
// Operational endpoints stay unversioned:
//
//	GET  /stats                          service counters
//	GET  /healthz                        liveness + deployment shape (JSON)
//	GET  /metrics                        Prometheus-style text exposition
//	GET  /debug/traces?n=...             recent sampled request traces (JSON)
//	GET  /debug/traces/{id}              all retained traces with that 128-bit
//	                                     trace ID (byte-deterministic JSON)
//	GET  /debug/slo                      Δ-budget SLO snapshot: staleness
//	                                     histograms, burn rates, exemplars
//	GET  /debug/pprof/...                standard Go profiling endpoints
//
// Requests carrying a W3C traceparent header join the caller's trace:
// the server-side trace adopts the propagated 128-bit trace ID (and the
// head-based sampling decision), so one device page load stitches into
// one cross-process trace queryable at /debug/traces/{id}.
//
// The package is pure net/http + encoding/json and fully testable with
// httptest; cmd/speedkit-server is a thin wrapper around Handler.
package httpapi

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"speedkit/internal/cache"
	"speedkit/internal/clock"
	"speedkit/internal/core"
	"speedkit/internal/durable"
	"speedkit/internal/metrics"
	"speedkit/internal/netsim"
	"speedkit/internal/obs"
	"speedkit/internal/session"
	"speedkit/internal/tracectx"
)

// API serves one Speed Kit service.
type API struct {
	svc *core.Service
	// users resolves the ?user= parameter for the blocks endpoint. In
	// production this is the session/auth layer; here it is an in-memory
	// registry.
	users map[string]*session.User
	// region is the edge the HTTP surface represents.
	region netsim.Region
	// started is the service-clock instant the API was built, the zero
	// point for the uptime /healthz reports.
	started time.Time

	// Sketch-state gauges, refreshed at every /metrics scrape so the
	// exposition reflects the coherence state at observation time.
	sketchGen     *metrics.Gauge
	sketchTracked *metrics.Gauge
	sketchBytes   *metrics.Gauge

	// Durability gauges (nil maps/pointers when the service runs
	// memory-only). The wal/durable packages sit under the obslabels
	// boundary and cannot self-register; the HTTP surface owns their
	// exposition, refreshed per scrape from plain Stats structs.
	walAppends    *metrics.Gauge
	walFsyncs     *metrics.Gauge
	walReplayed   *metrics.Gauge
	snapshotBytes *metrics.Gauge
	recoveryMode  map[string]*metrics.Gauge

	// runtime feeds Go runtime health (goroutines, heap, GC pauses) into
	// the registry, refreshed per scrape like the gauges above.
	runtime *obs.RuntimeCollector
}

// New creates an API over svc, registering the given users.
func New(svc *core.Service, users []*session.User) *API {
	a := &API{
		svc:     svc,
		users:   make(map[string]*session.User, len(users)),
		region:  netsim.EU,
		started: svc.Clock().Now(),
	}
	r := svc.Obs()
	a.runtime = obs.NewRuntimeCollector(r)
	a.sketchGen = r.Gauge("speedkit.sketch.generation")
	a.sketchTracked = r.Gauge("speedkit.sketch.tracked")
	a.sketchBytes = r.Gauge("speedkit.sketch.bytes")
	if svc.Durable() != nil {
		a.walAppends = r.Gauge("speedkit.wal.appends")
		a.walFsyncs = r.Gauge("speedkit.wal.fsyncs")
		a.walReplayed = r.Gauge("speedkit.wal.replayed_records")
		a.snapshotBytes = r.Gauge("speedkit.durable.snapshot_bytes")
		a.recoveryMode = make(map[string]*metrics.Gauge)
		for _, mode := range []durable.Mode{durable.Fresh, durable.Snapshot, durable.Replay, durable.ColdStart} {
			a.recoveryMode[mode.String()] = r.Gauge("speedkit.recovery.mode", obs.L("mode", mode.String()))
		}
	}
	for _, u := range users {
		a.users[u.ID] = u
	}
	return a
}

// Handler returns the routed http.Handler: the /v1/ surface, the legacy
// unversioned aliases (same handlers, kept for one release), and the
// operational endpoints, which stay unversioned.
func (a *API) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", a.handleHealthz)
	mux.HandleFunc("GET /v1/sketch", a.handleSketch)
	mux.HandleFunc("GET /v1/page", a.handlePage)
	mux.HandleFunc("GET /v1/blocks", a.handleBlocks)
	mux.HandleFunc("POST /v1/write", a.handleWrite)
	mux.HandleFunc("POST /v1/purge", a.handlePurge)
	// Legacy aliases, one release of grace for deployed clients.
	mux.HandleFunc("GET /sketch", a.handleSketch)
	mux.HandleFunc("GET /page", a.handlePage)
	mux.HandleFunc("GET /blocks", a.handleBlocks)
	mux.HandleFunc("POST /admin/write", a.handleWrite)
	mux.HandleFunc("GET /stats", a.handleStats)
	mux.HandleFunc("GET /metrics", a.handleMetrics)
	mux.HandleFunc("GET /debug/traces", a.handleTraces)
	mux.HandleFunc("GET /debug/traces/{id}", a.handleTraceByID)
	mux.HandleFunc("GET /debug/slo", a.handleSLO)
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// Health is the /healthz response body.
type Health struct {
	Status string `json:"status"`
	// Uptime is time served since construction, on the service clock.
	Uptime string `json:"uptime"`
	// SketchGeneration is the coherence server's content generation.
	SketchGeneration uint64 `json:"sketch_generation"`
	// SketchTracked is how many resource IDs the sketch currently tracks.
	SketchTracked int `json:"sketch_tracked"`
	// InvalidationShards is the query matcher's shard count.
	InvalidationShards int `json:"invalidation_shards"`
	// RecoveryMode is how the durability subsystem rebuilt state at
	// startup (fresh | snapshot | replay | coldstart); empty when the
	// service runs memory-only.
	RecoveryMode string `json:"recovery_mode,omitempty"`
	// Durability carries the WAL/snapshot counters; absent when the
	// service runs memory-only.
	Durability *HealthDurability `json:"durability,omitempty"`
}

// HealthDurability is the durability section of /healthz: enough to see
// at a glance whether writes are reaching disk (appends, batched write
// syscalls, fsyncs) and how much WAL tail a crash would replay (the gap
// between the append counter and the last snapshot's LSN).
type HealthDurability struct {
	WALAppends      uint64 `json:"wal_appends"`
	WALBatchWrites  uint64 `json:"wal_batch_writes"`
	WALFsyncs       uint64 `json:"wal_fsyncs"`
	Snapshots       uint64 `json:"snapshots"`
	LastSnapshotLSN uint64 `json:"last_snapshot_lsn"`
}

func (a *API) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	h := Health{
		Status:             "ok",
		Uptime:             a.svc.Clock().Now().Sub(a.started).String(),
		SketchGeneration:   a.svc.SketchServer().Generation(),
		SketchTracked:      a.svc.SketchServer().Stats().Tracked,
		InvalidationShards: a.svc.Engine().Shards(),
	}
	if store := a.svc.Durable(); store != nil {
		st := store.Stats()
		h.RecoveryMode = st.LastRecovery.Mode.String()
		h.Durability = &HealthDurability{
			WALAppends:      st.WAL.Appends,
			WALBatchWrites:  st.WAL.BatchWrites,
			WALFsyncs:       st.WAL.Fsyncs,
			Snapshots:       st.Snapshots,
			LastSnapshotLSN: store.SnapshotLSN(),
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(h)
}

// handleMetrics is the scrape endpoint. Sketch-state gauges are refreshed
// here, at observation time, instead of on every protocol operation.
func (a *API) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	srv := a.svc.SketchServer()
	a.sketchGen.Set(int64(srv.Generation()))
	a.sketchTracked.Set(int64(srv.Stats().Tracked))
	a.sketchBytes.Set(int64(srv.SketchBytes()))
	if store := a.svc.Durable(); store != nil {
		st := store.Stats()
		a.walAppends.Set(int64(st.WAL.Appends))
		a.walFsyncs.Set(int64(st.WAL.Fsyncs))
		a.walReplayed.Set(int64(st.WAL.Replayed))
		a.snapshotBytes.Set(int64(st.SnapshotBytes))
		for mode, g := range a.recoveryMode {
			if mode == st.LastRecovery.Mode.String() {
				g.Set(1)
			} else {
				g.Set(0)
			}
		}
	}
	// Refresh the scrape-time collectors: burn-rate gauges from the SLO
	// tracker and the Go runtime gauges. Both are nil-safe.
	a.svc.SLO().Snapshot()
	a.runtime.Collect()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = a.svc.Obs().WriteText(w)
}

// handleSLO serves the Δ-budget SLO snapshot: per-source staleness
// histograms, multi-window burn rates, and trace-ID exemplars that join
// tail observations to /debug/traces/{id}.
func (a *API) handleSLO(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(a.svc.SLO().Snapshot())
}

// handleTraceByID serves every retained trace with the given causal
// identity, oldest first, as byte-deterministic JSON — the query the
// stitched cross-process exports and SLO exemplars point at.
func (a *API) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	id, ok := tracectx.ParseTraceID(r.PathValue("id"))
	if !ok {
		WriteError(w, http.StatusBadRequest, CodeBadRequest, "bad trace id (32 lowercase hex chars)")
		return
	}
	out, err := obs.ExportTraces(a.svc.Tracer().ByTraceID(id))
	if err != nil {
		WriteError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(out)
	_, _ = w.Write([]byte("\n"))
}

// handleTraces dumps the tracer's ring of recent sampled traces, newest
// first. ?n= bounds the count (default 32).
func (a *API) handleTraces(w http.ResponseWriter, r *http.Request) {
	n := 32
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v <= 0 {
			WriteError(w, http.StatusBadRequest, CodeBadRequest, "bad ?n=")
			return
		}
		n = v
	}
	traces := a.svc.Tracer().Recent(n)
	if traces == nil {
		traces = []*obs.Trace{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(traces)
}

// startRemote begins the server-side trace for one HTTP request, joining
// the W3C traceparent the caller propagated (absent or malformed headers
// collapse to a fresh local root; an unsampled parent yields nil, which
// every downstream call treats as "off"). The returned ctx carries the
// trace so the core transport methods attach their spans to it.
func (a *API) startRemote(r *http.Request, kind, path string) (*obs.Trace, context.Context) {
	parent, _ := tracectx.ParseTraceparent(r.Header.Get(tracectx.Header))
	tr := a.svc.Tracer().StartRemote(kind, path, parent)
	return tr, obs.ContextWithTrace(r.Context(), tr)
}

// finishRemote stamps the shared trailer fields and publishes the trace.
func (a *API) finishRemote(tr *obs.Trace, src string, total time.Duration) {
	if tr == nil {
		return
	}
	tr.SetSource(src)
	tr.SetSketch(a.svc.SketchServer().Generation(), 0, 0)
	tr.SetTotal(total)
	a.svc.Tracer().Finish(tr)
}

// handleSketch serves the flattened client sketch. Cache-Control pins its
// shared-cache lifetime to Δ so a CDN in front of this endpoint
// automatically amortizes sketch generation across the client population.
func (a *API) handleSketch(w http.ResponseWriter, r *http.Request) {
	tr, ctx := a.startRemote(r, "http.sketch", "/sketch")
	sn, lat, err := a.svc.FetchSketch(ctx, a.region)
	if err != nil {
		a.finishRemote(tr, "", 0)
		WriteError(w, http.StatusServiceUnavailable, CodeUnavailable, err.Error())
		return
	}
	a.finishRemote(tr, "cdn", lat)
	data, err := sn.Marshal()
	if err != nil {
		WriteError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Cache-Control", fmt.Sprintf("public, max-age=%d", int(a.svc.Delta().Seconds())))
	w.Header().Set("X-Sketch-Generation", strconv.FormatUint(sn.Generation, 10))
	_, _ = w.Write(data)
}

// etagFor renders a page version as a strong ETag.
func etagFor(version uint64) string { return fmt.Sprintf("%q", "v"+strconv.FormatUint(version, 10)) }

// parseETag extracts the version from an ETag produced by etagFor.
func parseETag(tag string) (uint64, bool) {
	tag = strings.TrimSpace(tag)
	tag = strings.TrimPrefix(tag, "W/")
	tag = strings.Trim(tag, `"`)
	if !strings.HasPrefix(tag, "v") {
		return 0, false
	}
	v, err := strconv.ParseUint(tag[1:], 10, 64)
	return v, err == nil
}

// handlePage serves the anonymous page shell. With If-None-Match it runs
// the protocol's conditional revalidation: unchanged versions answer 304
// with a renewed freshness lifetime.
func (a *API) handlePage(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Query().Get("path")
	if path == "" {
		WriteError(w, http.StatusBadRequest, CodeBadRequest, "missing ?path=")
		return
	}
	// The trace starts before the fetch so the core transport's spans
	// (core.fetch / core.revalidate) land on it via the ctx; when the
	// device propagated a traceparent, this trace adopts its 128-bit ID
	// and the page load stitches end-to-end across the hop.
	tr, ctx := a.startRemote(r, "http.page", path)

	if inm := r.Header.Get("If-None-Match"); inm != "" {
		if known, ok := parseETag(inm); ok {
			rr, err := a.svc.Revalidate(ctx, a.region, path, known)
			if err != nil {
				a.finishRemote(tr, "", 0)
				WriteError(w, http.StatusNotFound, CodeNotFound, err.Error())
				return
			}
			tr.MarkRevalidated()
			a.finishRemote(tr, rr.Source.String(), rr.Latency)
			if rr.NotModified {
				a.setCachingHeaders(w, rr.Entry.ExpiresAt, known)
				w.Header().Set("X-Simulated-Latency", rr.Latency.String())
				w.WriteHeader(http.StatusNotModified)
				return
			}
			a.writePage(w, rr.Entry, rr.Latency, rr.Source.String())
			return
		}
	}

	entry, simLat, src, err := a.svc.Fetch(ctx, a.region, path)
	if err != nil {
		a.finishRemote(tr, "", 0)
		WriteError(w, http.StatusNotFound, CodeNotFound, err.Error())
		return
	}
	a.finishRemote(tr, src.String(), simLat)
	a.writePage(w, entry, simLat, src.String())
}

// setCachingHeaders derives max-age from the entry expiration relative to
// the service clock (which may be simulated in tests).
func (a *API) setCachingHeaders(w http.ResponseWriter, expiresAt time.Time, version uint64) {
	ttl := int(expiresAt.Sub(a.svc.Clock().Now()).Seconds())
	if ttl < 0 {
		ttl = 0
	}
	w.Header().Set("Cache-Control", fmt.Sprintf("public, max-age=%d", ttl))
	w.Header().Set("ETag", etagFor(version))
}

func (a *API) writePage(w http.ResponseWriter, entry cache.Entry, simLat time.Duration, src string) {
	a.setCachingHeaders(w, entry.ExpiresAt, entry.Version)
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Header().Set("X-Served-By", src)
	w.Header().Set("X-Simulated-Latency", simLat.String())
	if blocks := entry.Metadata["blocks"]; blocks != "" {
		w.Header().Set("X-Blocks", blocks)
	}
	_, _ = w.Write(entry.Body)
}

// handleBlocks is the first-party personalization API.
func (a *API) handleBlocks(w http.ResponseWriter, r *http.Request) {
	names := strings.Split(r.URL.Query().Get("names"), ",")
	if len(names) == 1 && names[0] == "" {
		WriteError(w, http.StatusBadRequest, CodeBadRequest, "missing ?names=")
		return
	}
	u := a.users[r.URL.Query().Get("user")] // nil → anonymous fragments
	// The trace path is the fixed endpoint, never the user: traces are
	// identity-free by construction.
	tr, ctx := a.startRemote(r, "http.blocks", "/blocks")
	frs, lat, err := a.svc.FetchBlocks(ctx, a.region, names, u)
	if err != nil {
		a.finishRemote(tr, "", 0)
		WriteError(w, http.StatusServiceUnavailable, CodeUnavailable, err.Error())
		return
	}
	a.finishRemote(tr, "origin", lat)
	out := make(map[string]string, len(frs))
	for name, fr := range frs {
		out[name] = string(fr)
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-store") // personalized: never shared-cached
	_ = json.NewEncoder(w).Encode(out)
}

// handleWrite applies a catalog mutation, driving the invalidation
// pipeline end to end.
func (a *API) handleWrite(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("product")
	if id == "" {
		WriteError(w, http.StatusBadRequest, CodeBadRequest, "missing ?product=")
		return
	}
	patch := map[string]any{}
	if p := r.URL.Query().Get("price"); p != "" {
		price, err := strconv.ParseFloat(p, 64)
		if err != nil {
			WriteError(w, http.StatusBadRequest, CodeBadRequest, "bad price")
			return
		}
		patch["price"] = price
	}
	if st := r.URL.Query().Get("stock"); st != "" {
		n, err := strconv.ParseInt(st, 10, 64)
		if err != nil {
			WriteError(w, http.StatusBadRequest, CodeBadRequest, "bad stock")
			return
		}
		patch["stock"] = n
	}
	if len(patch) == 0 {
		WriteError(w, http.StatusBadRequest, CodeBadRequest, "nothing to write (price= or stock=)")
		return
	}
	path := "/product/" + id
	// The write span becomes the causal parent of every invalidation-
	// pipeline run the patch triggers: the change stream delivers
	// synchronously inside WithWriteSpan, so the pipeline traces adopt
	// this trace's ID and the whole fan-out (sketch report, CDN purge,
	// durable advance) is queryable under one /debug/traces/{id}.
	tr, _ := a.startRemote(r, "http.write", path)
	var sw *clock.Stopwatch
	if tr != nil {
		sw = clock.NewStopwatch(a.svc.Clock())
	}
	var patchErr error
	a.svc.WithWriteSpan(tr.SpanContext(), func() {
		patchErr = a.svc.Docs().Patch("products", id, patch)
	})
	if patchErr != nil {
		a.finishRemote(tr, "", 0)
		WriteError(w, http.StatusNotFound, CodeNotFound, patchErr.Error())
		return
	}
	var total time.Duration
	if sw != nil {
		total = sw.Elapsed()
	}
	a.finishRemote(tr, "origin", total)
	fmt.Fprintf(w, "ok: %s now v%d, in sketch: %v\n",
		path, a.svc.Origin().Version(path), a.svc.SketchServer().Contains(path))
}

// handlePurge evicts one path from the shared caching tier: the CDN
// edges drop their copies (after the modeled propagation delay) and
// every registered purge listener — a speedkit-edge process fronting
// this server — is notified. Purging an unknown path is not an error:
// purges are idempotent eviction requests, not resource lookups.
func (a *API) handlePurge(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Query().Get("path")
	if path == "" {
		WriteError(w, http.StatusBadRequest, CodeBadRequest, "missing ?path=")
		return
	}
	a.svc.PurgePath(path)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]string{"purged": path})
}

// handleStats dumps service counters in a human-readable form.
func (a *API) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := a.svc.Stats()
	sk := a.svc.SketchServer().Stats()
	cd := a.svc.CDN().Stats()
	fmt.Fprintf(w, "service: %+v\n", st)
	fmt.Fprintf(w, "sketch:  %+v (bytes=%d)\n", sk, a.svc.SketchServer().SketchBytes())
	fmt.Fprintf(w, "cdn:     %+v (hit ratio %.1f%%)\n", cd, cd.HitRatio()*100)
	fmt.Fprintf(w, "gdpr:\n%s", a.svc.Auditor())
	if hot := a.svc.HotPaths(5); len(hot) > 0 {
		fmt.Fprintln(w, "hot paths:")
		for _, h := range hot {
			fmt.Fprintf(w, "  %6d  %s\n", h.Hits, h.Path)
		}
	}
}

// RegisteredUsers returns the user-registry size (primarily for tests).
func (a *API) RegisteredUsers() int { return len(a.users) }
