package bent

import "fmt"

// Regression is one benchmark that fell outside its suite's noise band
// relative to the committed baseline.
type Regression struct {
	Suite string `json:"suite"`
	Name  string `json:"name"`
	// Metric is "ns/op", "allocs/op", or "missing".
	Metric   string  `json:"metric"`
	Baseline float64 `json:"baseline"`
	Current  float64 `json:"current"`
	// Allowed is the band edge the current value exceeded.
	Allowed float64 `json:"allowed"`
}

func (r Regression) String() string {
	if r.Metric == "missing" {
		return fmt.Sprintf("%s: %s: benchmark missing from current run (baseline %.6g ns/op)",
			r.Suite, r.Name, r.Baseline)
	}
	return fmt.Sprintf("%s: %s: %s %.6g exceeds allowed %.6g (baseline %.6g)",
		r.Suite, r.Name, r.Metric, r.Current, r.Allowed, r.Baseline)
}

// CanonicalName is the identity a benchmark is matched under: the parsed
// name with any procs suffix reattached. Splitting a result line at the
// last dash cannot tell a GOMAXPROCS suffix from a trailing numeric
// sub-benchmark parameter ("appenders-8" on a GOMAXPROCS=1 box parses as
// name "appenders", procs 8), so matching on the reconstituted full name
// is the only lossless identity. It is stable as long as runs pin -cpu,
// which every suite with parameterized benchmarks does.
func CanonicalName(r Result) string {
	if r.Procs > 0 {
		return fmt.Sprintf("%s-%d", r.Name, r.Procs)
	}
	return r.Name
}

// Compare diffs a fresh run against the committed baseline for a suite.
// Every baseline benchmark must be present in the current run and inside
// the noise band: ns/op may grow to baseline*(1+noise*scale); allocs/op
// may grow by at most the suite's absolute alloc-noise (never scaled, so
// zero-alloc promises stay hard). New benchmarks with no baseline entry
// are ignored — they start gating once the baseline is regenerated.
// Matching is by CanonicalName, so baselines seeded on a box with a
// different GOMAXPROCS default still line up as long as the suite pins
// -cpu.
func Compare(s Suite, current, baseline Report, scale float64) []Regression {
	if scale <= 0 {
		scale = 1
	}
	cur := make(map[string]Result, len(current.Benchmarks))
	for _, r := range current.Benchmarks {
		cur[CanonicalName(r)] = r
	}
	var regs []Regression
	for _, base := range baseline.Benchmarks {
		got, ok := cur[CanonicalName(base)]
		if !ok {
			regs = append(regs, Regression{
				Suite: s.Name, Name: CanonicalName(base), Metric: "missing",
				Baseline: base.NsPerOp,
			})
			continue
		}
		if allowed := base.NsPerOp * (1 + s.Noise*scale); got.NsPerOp > allowed {
			regs = append(regs, Regression{
				Suite: s.Name, Name: CanonicalName(base), Metric: "ns/op",
				Baseline: base.NsPerOp, Current: got.NsPerOp, Allowed: allowed,
			})
		}
		if base.AllocsPerOp != nil && got.AllocsPerOp != nil {
			if allowed := *base.AllocsPerOp + s.AllocNoise; *got.AllocsPerOp > allowed {
				regs = append(regs, Regression{
					Suite: s.Name, Name: CanonicalName(base), Metric: "allocs/op",
					Baseline: float64(*base.AllocsPerOp),
					Current:  float64(*got.AllocsPerOp),
					Allowed:  float64(allowed),
				})
			}
		}
	}
	return regs
}
