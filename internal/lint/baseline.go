package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// A Baseline records findings that are acknowledged but not yet fixed, so
// the driver can fail CI only on NEW findings. Entries match on analyzer,
// module-relative file, and message — deliberately not on line number, so
// unrelated edits above a known finding do not churn the baseline. Matching
// is a multiset: an entry with Count 2 absorbs at most two identical
// findings; a third is new.
//
// The intended workflow is additive-only in review: `speedkit-lint
// -write-baseline` regenerates the file, and a diff that ADDS entries needs
// the same scrutiny a `//lint:ignore` directive does. A shrinking baseline
// is progress.
type Baseline struct {
	Findings []BaselineEntry `json:"findings"`
}

// BaselineEntry identifies one acknowledged finding (or Count identical
// ones) by analyzer, module-relative slash-separated file path, and exact
// message text.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	// Count is how many identical findings this entry absorbs; zero or
	// absent means one.
	Count int `json:"count,omitempty"`
}

func (e BaselineEntry) key() string {
	return e.Analyzer + "\x00" + e.File + "\x00" + e.Message
}

func diagKey(d Diagnostic) string {
	return d.Analyzer + "\x00" + filepath.ToSlash(d.Pos.Filename) + "\x00" + d.Message
}

// ReadBaseline loads a baseline file. A missing file is an empty baseline,
// not an error, so a fresh checkout without one behaves as "everything is
// new".
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	return &b, nil
}

// WriteBaseline writes the findings as a baseline file, one entry per
// distinct (analyzer, file, message) with counts, sorted for stable diffs.
// Diagnostics should already carry module-relative paths.
func WriteBaseline(path string, diags []Diagnostic) error {
	counts := map[string]*BaselineEntry{}
	var order []string
	for _, d := range diags {
		k := diagKey(d)
		if e, ok := counts[k]; ok {
			e.Count++
			continue
		}
		counts[k] = &BaselineEntry{
			Analyzer: d.Analyzer,
			File:     filepath.ToSlash(d.Pos.Filename),
			Message:  d.Message,
			Count:    1,
		}
		order = append(order, k)
	}
	b := Baseline{Findings: []BaselineEntry{}}
	for _, k := range order {
		e := *counts[k]
		if e.Count == 1 {
			e.Count = 0 // omitempty: a bare entry means one
		}
		b.Findings = append(b.Findings, e)
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Split partitions diags into findings not covered by the baseline (fresh)
// and findings it absorbs (baselined). Input order is preserved within each
// partition. Counts are consumed left to right: with Count 1 and two
// identical findings, the first is baselined and the second is fresh.
func (b *Baseline) Split(diags []Diagnostic) (fresh, baselined []Diagnostic) {
	remaining := map[string]int{}
	for _, e := range b.Findings {
		n := e.Count
		if n <= 0 {
			n = 1
		}
		remaining[e.key()] += n
	}
	for _, d := range diags {
		k := diagKey(d)
		if remaining[k] > 0 {
			remaining[k]--
			baselined = append(baselined, d)
			continue
		}
		fresh = append(fresh, d)
	}
	return fresh, baselined
}

// Relativize rewrites each diagnostic's filename to be slash-separated and
// relative to root, so output, baselines, and SARIF artifacts are stable
// across checkouts. Filenames outside root are left as-is.
func Relativize(diags []Diagnostic, root string) []Diagnostic {
	out := make([]Diagnostic, len(diags))
	for i, d := range diags {
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !isUpward(rel) {
			d.Pos.Filename = filepath.ToSlash(rel)
		}
		out[i] = d
	}
	return out
}

func isUpward(rel string) bool {
	return rel == ".." || len(rel) > 2 && rel[:3] == ".."+string(filepath.Separator)
}
