package clock

import (
	"sync"
	"testing"
	"time"
)

func TestRealNowProgresses(t *testing.T) {
	a := System.Now()
	b := System.Now()
	if b.Before(a) {
		t.Fatalf("real clock went backwards: %v then %v", a, b)
	}
}

func TestSimulatedDefaultsToFixedEpoch(t *testing.T) {
	a := NewSimulated(time.Time{})
	b := NewSimulated(time.Time{})
	if !a.Now().Equal(b.Now()) {
		t.Fatalf("default epochs differ: %v vs %v", a.Now(), b.Now())
	}
}

func TestSimulatedAdvance(t *testing.T) {
	c := NewSimulated(time.Unix(100, 0))
	c.Advance(5 * time.Second)
	if got := c.Now(); !got.Equal(time.Unix(105, 0)) {
		t.Fatalf("now = %v, want 105s", got)
	}
	c.Advance(-time.Hour) // ignored
	if got := c.Now(); !got.Equal(time.Unix(105, 0)) {
		t.Fatalf("negative advance moved clock: %v", got)
	}
}

func TestSimulatedSetNeverBackwards(t *testing.T) {
	c := NewSimulated(time.Unix(100, 0))
	c.Set(time.Unix(50, 0))
	if !c.Now().Equal(time.Unix(100, 0)) {
		t.Fatalf("Set moved clock backwards to %v", c.Now())
	}
	c.Set(time.Unix(200, 0))
	if !c.Now().Equal(time.Unix(200, 0)) {
		t.Fatalf("Set failed to move forward: %v", c.Now())
	}
}

func TestSimulatedConcurrentAdvance(t *testing.T) {
	c := NewSimulated(time.Unix(0, 0))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Advance(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := c.Now(); !got.Equal(time.Unix(8, 0)) {
		t.Fatalf("now = %v, want 8s", got)
	}
}
