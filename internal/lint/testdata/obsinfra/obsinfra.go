// Package obsinfra seeds the shared-infrastructure side of obslabels.
// The fixture test loads it under "fixture/internal/cache", so the
// analyzer treats it as shared infrastructure — where importing the
// telemetry package at all crosses the GDPR boundary (obs depends on
// internal/gdpr for its PII classification).
package obsinfra

import (
	"speedkit/internal/obs" // want "imports telemetry package"
)

// Hits is instrumented through a registry the caller injects; even that
// is illegal here — shared infrastructure exposes counters via its own
// Stats types and lets the service layer translate them.
func Hits(r *obs.Registry) {
	r.Counter("fixture.cache.hits.total").Inc()
}
