package metrics

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 {
		t.Fatalf("empty count = %d", h.Count())
	}
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty stats nonzero: mean=%v min=%v max=%v", h.Mean(), h.Min(), h.Max())
	}
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := NewHistogram()
	h.Observe(42)
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 42 || h.Max() != 42 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if v := h.Quantile(q); v != 42 {
			t.Fatalf("quantile(%v) = %v, want 42", q, v)
		}
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Observe(-10)
	h.Observe(math.NaN())
	if h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("negative/NaN not clamped: min=%v max=%v", h.Min(), h.Max())
	}
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	// Quantile estimates must be within the bucket relative error (~5%)
	// of the exact sample quantiles for a heavy-tailed distribution.
	rng := rand.New(rand.NewSource(1))
	h := NewHistogram()
	sample := make([]float64, 50000)
	for i := range sample {
		// log-normal-ish latencies between ~10µs and ~10s
		v := math.Exp(rng.NormFloat64()*1.5 + 8)
		sample[i] = v
		h.Observe(v)
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		exact := ExactQuantile(sample, q)
		est := h.Quantile(q)
		rel := math.Abs(est-exact) / exact
		if rel > 0.08 {
			t.Errorf("q=%v exact=%.1f est=%.1f rel err %.3f > 0.08", q, exact, est, rel)
		}
	}
}

func TestHistogramMergePreservesTotals(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 0; i < 100; i++ {
		a.Observe(float64(i))
		b.Observe(float64(1000 + i))
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Min() != 0 || a.Max() != 1099 {
		t.Fatalf("merged min/max = %v/%v", a.Min(), a.Max())
	}
	wantSum := b.Sum() + (99 * 100 / 2)
	if math.Abs(a.Sum()-wantSum) > 1e-6 {
		t.Fatalf("merged sum = %v, want %v", a.Sum(), wantSum)
	}
}

func TestHistogramMergeSelfAndNil(t *testing.T) {
	h := NewHistogram()
	h.Observe(5)
	h.Merge(nil)
	h.Merge(h)
	if h.Count() != 1 {
		t.Fatalf("self/nil merge changed count: %d", h.Count())
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Observe(123)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatalf("reset incomplete: count=%d max=%v", h.Count(), h.Max())
	}
}

func TestHistogramSnapshotOrdering(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		h.Observe(rng.Float64() * 1e6)
	}
	s := h.Snapshot()
	if !(s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.Max) {
		t.Fatalf("quantiles not monotone: %+v", s)
	}
	if s.Count != 10000 {
		t.Fatalf("snapshot count = %d", s.Count)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(rng.Float64() * 100)
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("lost observations: %d", h.Count())
	}
}

func TestHistogramQuantilePropertyBounded(t *testing.T) {
	// Property: for any set of observed values, every quantile estimate is
	// within [min, max] and quantiles are monotone in q.
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram()
		for _, r := range raw {
			h.Observe(float64(r % 1_000_000))
		}
		prev := -1.0
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			v := h.Quantile(q)
			if v < h.Min()-1e-9 || v > h.Max()+1e-9 {
				return false
			}
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestExactQuantile(t *testing.T) {
	s := []float64{5, 1, 3, 2, 4}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := ExactQuantile(s, c.q); got != c.want {
			t.Errorf("ExactQuantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := ExactQuantile(nil, 0.5); got != 0 {
		t.Errorf("ExactQuantile(nil) = %v", got)
	}
	// Input must not be mutated.
	if s[0] != 5 {
		t.Errorf("input mutated: %v", s)
	}
}

func TestObserveDuration(t *testing.T) {
	h := NewHistogram()
	h.ObserveDuration(2 * time.Millisecond)
	if h.Max() != 2000 {
		t.Fatalf("duration not recorded in µs: %v", h.Max())
	}
}
