// Package metrics provides the measurement substrate used throughout the
// Speed Kit reproduction: streaming histograms with percentile queries,
// monotonic counters, rate meters, and labeled registries.
//
// Everything in this package is safe for concurrent use unless documented
// otherwise, and allocation-free on the hot recording path so that the
// instrumentation itself does not distort benchmark results.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Histogram is a streaming histogram over non-negative values (typically
// durations in microseconds or sizes in bytes). It uses logarithmically
// sized buckets so that relative error is bounded (~5% per bucket) across
// nine orders of magnitude, which is the precision/footprint trade-off used
// by HdrHistogram-style recorders in production CDNs.
//
// Recording is lock-striped: each Observe locks one of histStripes
// sub-recorders chosen round-robin, so concurrent recorders contend on a
// mutex only 1/histStripes of the time. Readers (quantiles, snapshots)
// fold the stripes together, taking each stripe's lock in turn — the
// read side is the cold path and pays for the write side's scalability.
type Histogram struct {
	growth  float64 // bucket growth factor (immutable)
	logG    float64 // precomputed log(growth) (immutable)
	rr      atomic.Uint32
	stripes [histStripes]histStripe
}

// histStripes is the lock-stripe count (power of two).
const histStripes = 8

// histStripe is one independently locked sub-recorder. Padded so that
// adjacent stripes do not share a cache line.
type histStripe struct {
	mu      sync.Mutex
	counts  []uint64 // guarded by mu
	total   uint64   // guarded by mu
	sum     float64  // guarded by mu
	min     float64  // guarded by mu
	max     float64  // guarded by mu
	nonZero bool     // guarded by mu
	_       [48]byte
}

// histState is a consistent fold of all stripes, used by readers.
type histState struct {
	counts  []uint64
	total   uint64
	sum     float64
	min     float64
	max     float64
	nonZero bool
}

// defaultGrowth yields ~5% relative bucket width.
const defaultGrowth = 1.05

// numBuckets covers values up to ~1e9 with growth 1.05 plus a zero bucket.
const numBuckets = 512

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{
		growth: defaultGrowth,
		logG:   math.Log(defaultGrowth),
	}
	for i := range h.stripes {
		st := &h.stripes[i]
		st.counts = make([]uint64, numBuckets)
		st.min = math.Inf(1)
		st.max = math.Inf(-1)
	}
	return h
}

// bucketFor maps a value to its bucket index. Values <= 1 land in bucket 0.
func (h *Histogram) bucketFor(v float64) int {
	if v <= 1 {
		return 0
	}
	i := int(math.Log(v)/h.logG) + 1
	if i >= numBuckets {
		return numBuckets - 1
	}
	return i
}

// lowerBound is the smallest value that maps to bucket i.
func (h *Histogram) lowerBound(i int) float64 {
	if i <= 0 {
		return 0
	}
	return math.Pow(h.growth, float64(i-1))
}

// Observe records a single value. Negative values are clamped to zero.
func (h *Histogram) Observe(v float64) {
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	b := h.bucketFor(v)
	st := &h.stripes[h.rr.Add(1)&(histStripes-1)]
	st.mu.Lock()
	st.counts[b]++
	st.total++
	st.sum += v
	if v < st.min {
		st.min = v
	}
	if v > st.max {
		st.max = v
	}
	st.nonZero = true
	st.mu.Unlock()
}

// ObserveDuration records a duration in microseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d.Microseconds()))
}

// merged folds every stripe into one consistent-per-stripe state. Stripe
// locks are taken one at a time, so concurrent recording continues on the
// other stripes while a reader folds.
func (h *Histogram) merged() histState {
	out := histState{
		counts: make([]uint64, numBuckets),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
	for i := range h.stripes {
		st := &h.stripes[i]
		st.mu.Lock()
		for j, c := range st.counts {
			out.counts[j] += c
		}
		out.total += st.total
		out.sum += st.sum
		if st.nonZero {
			if st.min < out.min {
				out.min = st.min
			}
			if st.max > out.max {
				out.max = st.max
			}
			out.nonZero = true
		}
		st.mu.Unlock()
	}
	return out
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 {
	var total uint64
	for i := range h.stripes {
		st := &h.stripes[i]
		st.mu.Lock()
		total += st.total
		st.mu.Unlock()
	}
	return total
}

// Sum returns the running sum of all observations.
func (h *Histogram) Sum() float64 {
	var sum float64
	for i := range h.stripes {
		st := &h.stripes[i]
		st.mu.Lock()
		sum += st.sum
		st.mu.Unlock()
	}
	return sum
}

// Mean returns the arithmetic mean, or 0 for an empty histogram.
func (h *Histogram) Mean() float64 {
	m := h.merged()
	if m.total == 0 {
		return 0
	}
	return m.sum / float64(m.total)
}

// Min returns the smallest observed value, or 0 for an empty histogram.
func (h *Histogram) Min() float64 {
	m := h.merged()
	if !m.nonZero {
		return 0
	}
	return m.min
}

// Max returns the largest observed value, or 0 for an empty histogram.
func (h *Histogram) Max() float64 {
	m := h.merged()
	if !m.nonZero {
		return 0
	}
	return m.max
}

// Quantile returns an estimate of the q-quantile (0 <= q <= 1) using the
// bucket lower bound with linear interpolation within the bucket. Returns 0
// for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	return h.quantileOf(h.merged(), q)
}

func (h *Histogram) quantileOf(m histState, q float64) float64 {
	if m.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(m.total-1)
	var cum uint64
	for i, c := range m.counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) > rank {
			lo := h.lowerBound(i)
			hi := h.lowerBound(i + 1)
			// Interpolate within the bucket by the fraction of rank covered.
			frac := (rank - float64(cum)) / float64(c)
			v := lo + (hi-lo)*frac
			if v < m.min {
				v = m.min
			}
			if v > m.max {
				v = m.max
			}
			return v
		}
		cum += c
	}
	return m.max
}

// Quantiles returns estimates for several quantiles over one consistent
// fold of the stripes. The qs slice need not be sorted.
func (h *Histogram) Quantiles(qs ...float64) []float64 {
	m := h.merged()
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = h.quantileOf(m, q)
	}
	return out
}

// Snapshot returns an immutable copy of the histogram state for reporting.
func (h *Histogram) Snapshot() HistogramSnapshot {
	m := h.merged()
	s := HistogramSnapshot{
		Count: m.total,
		Sum:   m.sum,
	}
	if m.nonZero {
		s.Min = m.min
		s.Max = m.max
	}
	if m.total > 0 {
		s.Mean = m.sum / float64(m.total)
		s.P50 = h.quantileOf(m, 0.50)
		s.P90 = h.quantileOf(m, 0.90)
		s.P95 = h.quantileOf(m, 0.95)
		s.P99 = h.quantileOf(m, 0.99)
	}
	return s
}

// Merge folds other into h. Both histograms must use the same bucketing,
// which is always true for histograms created by NewHistogram.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other == h {
		return
	}
	// Fold other into a consistent copy first, then add it to one of our
	// stripes; no two locks are ever held at once.
	m := other.merged()
	st := &h.stripes[0]
	st.mu.Lock()
	for i, c := range m.counts {
		st.counts[i] += c
	}
	st.total += m.total
	st.sum += m.sum
	if m.nonZero {
		if m.min < st.min {
			st.min = m.min
		}
		if m.max > st.max {
			st.max = m.max
		}
		st.nonZero = true
	}
	st.mu.Unlock()
}

// Reset clears all recorded state.
func (h *Histogram) Reset() {
	for i := range h.stripes {
		st := &h.stripes[i]
		st.mu.Lock()
		for j := range st.counts {
			st.counts[j] = 0
		}
		st.total = 0
		st.sum = 0
		st.min = math.Inf(1)
		st.max = math.Inf(-1)
		st.nonZero = false
		st.mu.Unlock()
	}
}

// HistogramSnapshot is a point-in-time summary of a Histogram.
type HistogramSnapshot struct {
	Count               uint64
	Sum, Mean, Min, Max float64
	P50, P90, P95, P99  float64
}

// String renders the snapshot as a compact single line, with values assumed
// to be microseconds (the convention used across the benchmark harness).
func (s HistogramSnapshot) String() string {
	return fmt.Sprintf("n=%d mean=%.0fµs p50=%.0fµs p90=%.0fµs p99=%.0fµs max=%.0fµs",
		s.Count, s.Mean, s.P50, s.P90, s.P99, s.Max)
}

// ExactQuantile computes the exact q-quantile of a sample slice. It is used
// by tests to bound the histogram's estimation error and by small-sample
// reports where exactness is cheap. The input slice is not modified.
func ExactQuantile(sample []float64, q float64) float64 {
	if len(sample) == 0 {
		return 0
	}
	s := make([]float64, len(sample))
	copy(s, sample)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo] + (s[lo+1]-s[lo])*frac
}
