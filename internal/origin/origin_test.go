package origin

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"speedkit/internal/clock"
	"speedkit/internal/netsim"
	"speedkit/internal/query"
	"speedkit/internal/session"
	"speedkit/internal/storage"
)

func newTestOrigin(t *testing.T) (*Server, *storage.DocumentStore, *clock.Simulated) {
	t.Helper()
	clk := clock.NewSimulated(time.Time{})
	docs := storage.NewDocumentStore(clk)
	for _, p := range []struct {
		id    string
		price float64
		cat   string
	}{
		{"p1", 89.9, "shoes"}, {"p2", 120, "shoes"}, {"p3", 25, "hats"},
	} {
		if err := docs.Insert("products", p.id, map[string]any{"price": p.price, "category": p.cat, "name": "Item " + p.id}); err != nil {
			t.Fatal(err)
		}
	}
	srv := NewServer(docs, clk)
	t.Cleanup(srv.Close)
	srv.RegisterStatic("/", []byte("<h1>Home</h1>"), "greeting", "cart")
	srv.RegisterProducts("/product/", "products", "cart", "reco")
	srv.RegisterQueryPage("/category/shoes", "Shoes",
		query.MustParse(`products WHERE category = "shoes" ORDER BY price`), "cart")
	srv.RegisterBlock("greeting", GreetingBlock)
	srv.RegisterBlock("cart", CartBlock)
	srv.RegisterBlock("reco", RecommendationsBlock)
	return srv, docs, clk
}

func TestRenderStatic(t *testing.T) {
	srv, _, _ := newTestOrigin(t)
	p, err := srv.Render("/")
	if err != nil {
		t.Fatal(err)
	}
	body := string(p.Body)
	if !strings.Contains(body, "<h1>Home</h1>") {
		t.Fatalf("body missing content: %s", body)
	}
	for _, b := range []string{"greeting", "cart"} {
		if !strings.Contains(body, BlockPlaceholder(b)) {
			t.Fatalf("missing placeholder %s", b)
		}
	}
	if len(p.Blocks) != 2 || p.Blocks[0] != "cart" {
		t.Fatalf("blocks = %v", p.Blocks)
	}
	if p.Version != 1 || p.ContentType != "text/html" {
		t.Fatalf("page meta = %+v", p)
	}
}

func TestRenderProductPage(t *testing.T) {
	srv, _, _ := newTestOrigin(t)
	p, err := srv.Render("/product/p1")
	if err != nil {
		t.Fatal(err)
	}
	body := string(p.Body)
	if !strings.Contains(body, "89.9") || !strings.Contains(body, "Item p1") {
		t.Fatalf("product fields missing: %s", body)
	}
	if !strings.Contains(body, BlockPlaceholder("reco")) {
		t.Fatal("reco placeholder missing")
	}
}

func TestRenderProductMissingDoc(t *testing.T) {
	srv, _, _ := newTestOrigin(t)
	if _, err := srv.Render("/product/ghost"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestRenderQueryPage(t *testing.T) {
	srv, _, _ := newTestOrigin(t)
	p, err := srv.Render("/category/shoes")
	if err != nil {
		t.Fatal(err)
	}
	body := string(p.Body)
	// Ascending price: p1 (89.9) before p2 (120); p3 (hat) absent.
	i1, i2 := strings.Index(body, `data-id="p1"`), strings.Index(body, `data-id="p2"`)
	if i1 == -1 || i2 == -1 || i1 > i2 {
		t.Fatalf("listing order wrong: %s", body)
	}
	if strings.Contains(body, "p3") {
		t.Fatal("hat leaked into shoes listing")
	}
}

func TestRenderNoRoute(t *testing.T) {
	srv, _, _ := newTestOrigin(t)
	if _, err := srv.Render("/nope"); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("err = %v", err)
	}
	// A bare product prefix (no ID) is not a route either.
	if _, err := srv.Render("/product/"); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("err = %v", err)
	}
}

func TestProductChangeBumpsVersion(t *testing.T) {
	srv, docs, _ := newTestOrigin(t)
	if v := srv.Version("/product/p1"); v != 1 {
		t.Fatalf("initial version = %d", v)
	}
	if err := docs.Patch("products", "p1", map[string]any{"price": 79.9}); err != nil {
		t.Fatal(err)
	}
	if v := srv.Version("/product/p1"); v != 2 {
		t.Fatalf("version after write = %d", v)
	}
	// Unrelated product unaffected.
	if v := srv.Version("/product/p2"); v != 1 {
		t.Fatalf("unrelated version = %d", v)
	}
	// Rendered page carries the new version and content.
	p, _ := srv.Render("/product/p1")
	if p.Version != 2 || !strings.Contains(string(p.Body), "79.9") {
		t.Fatalf("render after write: v=%d", p.Version)
	}
}

func TestManualInvalidate(t *testing.T) {
	srv, _, _ := newTestOrigin(t)
	srv.Invalidate("/category/shoes")
	if v := srv.Version("/category/shoes"); v != 2 {
		t.Fatalf("version = %d", v)
	}
	if srv.Stats().Invalidations == 0 {
		t.Fatal("invalidation not counted")
	}
}

func TestQueryPagesExport(t *testing.T) {
	srv, _, _ := newTestOrigin(t)
	qp := srv.QueryPages()
	if len(qp) != 1 {
		t.Fatalf("query pages = %v", qp)
	}
	if _, ok := qp["/category/shoes"]; !ok {
		t.Fatal("shoes page missing")
	}
}

func TestCloseStopsVersionBumps(t *testing.T) {
	srv, docs, _ := newTestOrigin(t)
	srv.Close()
	_ = docs.Patch("products", "p1", map[string]any{"price": 1.0})
	if v := srv.Version("/product/p1"); v != 1 {
		t.Fatalf("closed server still bumping versions: %d", v)
	}
}

func TestRenderBlockUnknownIsEmpty(t *testing.T) {
	srv, _, _ := newTestOrigin(t)
	if b := srv.RenderBlock("ghost", nil); b != nil {
		t.Fatalf("unknown block rendered %q", b)
	}
}

func TestBuiltinBlocks(t *testing.T) {
	u := &session.User{ID: "u1", Name: "Ada", LoggedIn: true, Tier: "gold"}
	u.AddToCart("p1", 3)
	u.RecordView("p9")

	if s := string(GreetingBlock(u)); !strings.Contains(s, "Ada") {
		t.Errorf("greeting = %s", s)
	}
	if s := string(GreetingBlock(nil)); !strings.Contains(s, "Welcome!") {
		t.Errorf("anon greeting = %s", s)
	}
	if s := string(CartBlock(u)); !strings.Contains(s, "3 items") {
		t.Errorf("cart = %s", s)
	}
	if s := string(CartBlock(nil)); !strings.Contains(s, "0 items") {
		t.Errorf("anon cart = %s", s)
	}
	if s := string(RecommendationsBlock(u)); !strings.Contains(s, "p9") {
		t.Errorf("reco = %s", s)
	}
	if s := string(RecommendationsBlock(nil)); !strings.Contains(s, "Popular") {
		t.Errorf("anon reco = %s", s)
	}
	if s := string(TierPriceBlock(u)); !strings.Contains(s, "gold: 10% off") {
		t.Errorf("tier = %s", s)
	}
	if s := string(TierPriceBlock(nil)); !strings.Contains(s, "standard: 0% off") {
		t.Errorf("anon tier = %s", s)
	}
}

func TestRecommendationsBlockLimitsToFour(t *testing.T) {
	u := session.Generate(newRand(), 1, netsim.EU)
	for i := 0; i < 10; i++ {
		u.RecordView("px")
	}
	s := string(RecommendationsBlock(u))
	if strings.Count(s, "px") != 4 {
		t.Fatalf("reco shows %d items: %s", strings.Count(s, "px"), s)
	}
}

func TestHasRoute(t *testing.T) {
	srv, _, _ := newTestOrigin(t)
	cases := []struct {
		path string
		want bool
	}{
		{"/", true},
		{"/category/shoes", true},
		{"/product/p1", true},
		{"/product/ghost", true}, // routed; document existence is Render's job
		{"/product/", false},     // bare prefix
		{"/nope", false},
	}
	for _, c := range cases {
		if got := srv.HasRoute(c.path); got != c.want {
			t.Errorf("HasRoute(%s) = %v, want %v", c.path, got, c.want)
		}
	}
}

func TestStatsCount(t *testing.T) {
	srv, _, _ := newTestOrigin(t)
	_, _ = srv.Render("/")
	srv.RenderBlock("cart", nil)
	st := srv.Stats()
	if st.Renders != 1 || st.BlockRenders != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func newRand() *rand.Rand { return rand.New(rand.NewSource(1)) }
