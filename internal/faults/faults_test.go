package faults

import (
	"errors"
	"testing"
	"time"

	"speedkit/internal/clock"
)

// drive runs a fixed decision workload against a fresh injector and
// returns it for inspection. The workload interleaves components and
// advances the clock, mimicking a simulation loop.
func drive(seed int64, rules []Rule) *Injector {
	clk := clock.NewSimulated(time.Time{})
	inj := New(clk, seed, rules...)
	for i := 0; i < 400; i++ {
		inj.Decide(OriginFetch)
		if i%2 == 0 {
			inj.Decide(SketchFetch)
		}
		if i%5 == 0 {
			inj.Decide(Invalidation)
			inj.Decide(CDNPurge)
		}
		clk.Advance(250 * time.Millisecond)
	}
	return inj
}

func TestSameSeedSameSchedule(t *testing.T) {
	a := drive(42, ChaosRules(0.2))
	b := drive(42, ChaosRules(0.2))
	sa, sb := a.Schedule(), b.Schedule()
	if len(sa) == 0 {
		t.Fatal("no faults injected at 20% rate over 400 iterations")
	}
	if len(sa) != len(sb) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, sa[i], sb[i])
		}
	}
	if a.ScheduleHash() != b.ScheduleHash() {
		t.Fatalf("hashes differ: %x vs %x", a.ScheduleHash(), b.ScheduleHash())
	}
}

func TestDifferentSeedDifferentSchedule(t *testing.T) {
	a := drive(42, ChaosRules(0.2))
	b := drive(43, ChaosRules(0.2))
	if a.ScheduleHash() == b.ScheduleHash() {
		t.Fatal("different seeds produced identical schedules")
	}
}

// Interleaving across components must not perturb a component's stream:
// the per-component call indices at which faults land are identical
// whether or not other components are being exercised.
func TestComponentStreamsIndependent(t *testing.T) {
	rules := []Rule{{Component: OriginFetch, Kind: Error, Probability: 0.3}}
	solo := New(clock.NewSimulated(time.Time{}), 7, rules...)
	for i := 0; i < 200; i++ {
		solo.Decide(OriginFetch)
	}

	mixed := New(clock.NewSimulated(time.Time{}), 7, append(rules,
		Rule{Component: SketchFetch, Kind: Blackhole, Probability: 0.5})...)
	for i := 0; i < 200; i++ {
		mixed.Decide(SketchFetch)
		mixed.Decide(OriginFetch)
		mixed.Decide(SketchFetch)
	}

	calls := func(inj *Injector) []uint64 {
		var out []uint64
		for _, ev := range inj.Schedule() {
			if ev.Component == OriginFetch {
				out = append(out, ev.Call)
			}
		}
		return out
	}
	a, b := calls(solo), calls(mixed)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("origin fault counts differ: solo=%d mixed=%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("origin fault %d at call %d solo vs %d mixed", i, a[i], b[i])
		}
	}
}

func TestBurstFaultsConsecutiveCalls(t *testing.T) {
	inj := New(clock.NewSimulated(time.Time{}), 1,
		Rule{Component: OriginFetch, Kind: Blackhole, Probability: 0.05, Burst: 4})
	var runs []int
	run := 0
	for i := 0; i < 2000; i++ {
		if inj.Decide(OriginFetch).Faulted() {
			run++
		} else if run > 0 {
			runs = append(runs, run)
			run = 0
		}
	}
	if len(runs) == 0 {
		t.Fatal("no bursts triggered")
	}
	for _, r := range runs {
		// Runs are at least the burst length; adjacent bursts can chain.
		if r < 4 {
			t.Fatalf("burst run of %d, want >= 4", r)
		}
	}
}

func TestScheduledWindow(t *testing.T) {
	clk := clock.NewSimulated(time.Time{})
	inj := New(clk, 9, Rule{
		Component:   OriginFetch,
		Kind:        Error,
		Probability: 1.0,
		After:       10 * time.Second,
		Until:       20 * time.Second,
	})
	for i := 0; i < 30; i++ {
		d := inj.Decide(OriginFetch)
		off := time.Duration(i) * time.Second
		inWindow := off >= 10*time.Second && off < 20*time.Second
		if d.Faulted() != inWindow {
			t.Fatalf("at offset %v faulted=%v, want %v", off, d.Faulted(), inWindow)
		}
		clk.Advance(time.Second)
	}
}

// A rule's activity window must not shift the randomness consumed by
// later decisions: once the window closes, the remaining stream is
// identical to a run where the windowed rule was never active. (Inside
// the window the first rule can shadow the second on simultaneous hits,
// so only the post-window region is comparable.)
func TestWindowDoesNotPerturbStream(t *testing.T) {
	run := func(until time.Duration) []Event {
		clk := clock.NewSimulated(time.Time{})
		inj := New(clk, 5,
			Rule{Component: OriginFetch, Kind: Latency, Probability: 0.5, Until: until},
			Rule{Component: OriginFetch, Kind: Error, Probability: 0.2})
		for i := 0; i < 300; i++ {
			inj.Decide(OriginFetch)
			clk.Advance(time.Second)
		}
		var errs []Event
		for _, ev := range inj.Schedule() {
			if ev.Kind == Error && ev.Call >= 100 {
				errs = append(errs, Event{Call: ev.Call, Kind: ev.Kind})
			}
		}
		return errs
	}
	// Window covering the first 1/3 of the run vs a window that never
	// opens: the error rule's post-window fault calls must match.
	a := run(100 * time.Second)
	b := run(time.Nanosecond)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("error-rule fault counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Call != b[i].Call {
			t.Fatalf("error fault %d at call %d vs %d", i, a[i].Call, b[i].Call)
		}
	}
}

func TestDecisionErrors(t *testing.T) {
	inj := New(clock.NewSimulated(time.Time{}), 3,
		Rule{Component: OriginFetch, Kind: Error, Probability: 1},
		Rule{Component: SketchFetch, Kind: Blackhole, Probability: 1},
		Rule{Component: Invalidation, Kind: Latency, Probability: 1, Latency: 42 * time.Millisecond})
	if d := inj.Decide(OriginFetch); !errors.Is(d.Err, ErrInjected) {
		t.Fatalf("error fault err = %v", d.Err)
	}
	if d := inj.Decide(SketchFetch); !errors.Is(d.Err, ErrBlackhole) {
		t.Fatalf("blackhole fault err = %v", d.Err)
	}
	d := inj.Decide(Invalidation)
	if d.Err != nil || d.Latency != 42*time.Millisecond {
		t.Fatalf("latency fault = %+v", d)
	}
}

func TestNilInjectorDisabled(t *testing.T) {
	var inj *Injector
	if d := inj.Decide(OriginFetch); d.Faulted() {
		t.Fatal("nil injector injected a fault")
	}
	if inj.Schedule() != nil || inj.Stats() != nil {
		t.Fatal("nil injector returned non-nil state")
	}
	if inj.ScheduleHash() != New(nil, 0).ScheduleHash() {
		t.Fatal("nil injector hash differs from empty injector hash")
	}
}

func TestUnruledComponentNeverFaults(t *testing.T) {
	inj := New(clock.NewSimulated(time.Time{}), 3,
		Rule{Component: OriginFetch, Kind: Error, Probability: 1})
	for i := 0; i < 50; i++ {
		if inj.Decide(CDNPurge).Faulted() {
			t.Fatal("component without rules faulted")
		}
	}
}

func TestStatsAndRate(t *testing.T) {
	inj := drive(11, ChaosRules(0.15))
	st := inj.Stats()
	for _, c := range []Component{OriginFetch, SketchFetch} {
		s := st[c]
		if s.Decisions == 0 {
			t.Fatalf("%s: no decisions recorded", c)
		}
		if s.Rate() <= 0.05 || s.Rate() >= 0.6 {
			t.Fatalf("%s: realized rate %.3f implausible for 0.15 profile", c, s.Rate())
		}
	}
	if inj.String() == "" {
		t.Fatal("empty stats report")
	}
}
